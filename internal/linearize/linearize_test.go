package linearize

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// op builders keep the histories readable: times are small integers.
func put(client int, key, value string, invoke, ret int64) Op {
	return Op{Client: client, Kind: Put, Key: key, Input: value, Invoke: invoke, Return: ret}
}

func get(client int, key, value string, found bool, invoke, ret int64) Op {
	return Op{Client: client, Kind: Get, Key: key, Output: value, Found: found, Invoke: invoke, Return: ret}
}

func unknownPut(client int, key, value string, invoke int64) Op {
	return Op{Client: client, Kind: Put, Key: key, Input: value, Unknown: true, Invoke: invoke, Return: -1}
}

func TestCheckEmptyAndSequential(t *testing.T) {
	if res := Check(nil); !res.Ok || res.Keys != 0 {
		t.Fatalf("empty history: %+v", res)
	}
	res := Check([]Op{
		get(1, "a", "", false, 0, 1), // before any put: not found
		put(1, "a", "v1", 2, 3),
		get(1, "a", "v1", true, 4, 5),
		put(1, "a", "v2", 6, 7),
		get(2, "a", "v2", true, 8, 9),
	})
	if !res.Ok {
		t.Fatalf("sequential history must linearize: %+v", res)
	}
	if res.Keys != 1 || res.Ops != 5 {
		t.Fatalf("counts wrong: %+v", res)
	}
}

func TestCheckStaleReadViolation(t *testing.T) {
	// The put completed strictly before the read started, yet the read
	// missed it: the canonical linearizability violation.
	res := Check([]Op{
		put(1, "a", "v1", 0, 10),
		get(2, "a", "", false, 20, 30),
	})
	if res.Ok {
		t.Fatalf("stale read must be refuted")
	}
	if len(res.Violations) != 1 || res.Violations[0].Key != "a" {
		t.Fatalf("violations: %+v", res.Violations)
	}
	if rep := res.Violations[0].Report(); !strings.Contains(rep, "not found") {
		t.Fatalf("report should show the stale observation:\n%s", rep)
	}
}

func TestCheckForkedValueViolation(t *testing.T) {
	// Two sequential reads observe two writes in opposite orders: no total
	// order explains both.
	res := Check([]Op{
		put(1, "a", "v1", 0, 1),
		put(2, "a", "v2", 2, 3),
		get(3, "a", "v1", true, 10, 11), // sees v1 after v2 committed...
		get(3, "a", "v2", true, 12, 13), // ...then v2 again
	})
	if res.Ok {
		t.Fatalf("flip-flopping reads must be refuted")
	}
}

func TestCheckConcurrentPutsEitherOrder(t *testing.T) {
	// Overlapping puts may linearize in either order; a read after both may
	// observe either winner.
	for _, winner := range []string{"v1", "v2"} {
		res := Check([]Op{
			put(1, "a", "v1", 0, 10),
			put(2, "a", "v2", 5, 15),
			get(3, "a", winner, true, 20, 21),
		})
		if !res.Ok {
			t.Fatalf("winner %q must be admissible: %+v", winner, res)
		}
	}
	// But a value nobody wrote is refuted.
	res := Check([]Op{
		put(1, "a", "v1", 0, 10),
		get(3, "a", "ghost", true, 20, 21),
	})
	if res.Ok {
		t.Fatalf("phantom value must be refuted")
	}
}

func TestCheckReadDuringPutWindow(t *testing.T) {
	// A read concurrent with a put may see the world before or after it.
	res := Check([]Op{
		put(1, "a", "v1", 0, 100),
		get(2, "a", "", false, 10, 20),  // linearizes before the put
		get(3, "a", "v1", true, 30, 40), // linearizes after it
	})
	if !res.Ok {
		t.Fatalf("both observations fit inside the put window: %+v", res)
	}
	// Once observed, the put cannot un-happen for a later read.
	res = Check([]Op{
		put(1, "a", "v1", 0, 100),
		get(3, "a", "v1", true, 10, 20),
		get(2, "a", "", false, 30, 40),
	})
	if res.Ok {
		t.Fatalf("observed put un-happening must be refuted")
	}
}

func TestCheckUnknownPutMayCommitOrVanish(t *testing.T) {
	// Committed reading: a later read observes the ambiguous put.
	res := Check([]Op{
		put(1, "a", "v1", 0, 1),
		unknownPut(2, "a", "maybe", 10),
		get(3, "a", "maybe", true, 20, 21),
	})
	if !res.Ok {
		t.Fatalf("unknown put observed by a read must linearize: %+v", res)
	}
	// Vanished reading: nothing ever observes it.
	res = Check([]Op{
		put(1, "a", "v1", 0, 1),
		unknownPut(2, "a", "maybe", 10),
		get(3, "a", "v1", true, 20, 21),
	})
	if !res.Ok {
		t.Fatalf("unknown put dropping out must linearize: %+v", res)
	}
	// The effect window of an unknown put never closes: it may commit late,
	// after reads that missed it.
	res = Check([]Op{
		unknownPut(2, "a", "maybe", 0),
		get(3, "a", "", false, 10, 11),
		get(3, "a", "maybe", true, 20, 21),
	})
	if !res.Ok {
		t.Fatalf("late-committing unknown put must linearize: %+v", res)
	}
	// But it cannot explain a value it did not write.
	res = Check([]Op{
		unknownPut(2, "a", "maybe", 0),
		get(3, "a", "ghost", true, 10, 11),
	})
	if res.Ok {
		t.Fatalf("unknown put must not excuse phantom values")
	}
}

func TestCheckUnknownGetIgnored(t *testing.T) {
	res := Check([]Op{
		put(1, "a", "v1", 0, 1),
		{Client: 2, Kind: Get, Key: "a", Unknown: true, Invoke: 2, Return: -1},
	})
	if !res.Ok || res.Ops != 1 {
		t.Fatalf("unknown get should be dropped from the checked ops: %+v", res)
	}
}

func TestCheckKeysIndependent(t *testing.T) {
	// A violation on one key does not taint another.
	res := Check([]Op{
		put(1, "good", "v1", 0, 1),
		get(2, "good", "v1", true, 2, 3),
		put(1, "bad", "v1", 0, 1),
		get(2, "bad", "", false, 10, 11),
	})
	if res.Ok || len(res.Violations) != 1 || res.Violations[0].Key != "bad" {
		t.Fatalf("exactly key %q must fail: %+v", "bad", res)
	}
}

func TestCheckTiedTimestampsAreConcurrent(t *testing.T) {
	// Return(A) == Invoke(B): cannot be ordered, so either outcome passes.
	res := Check([]Op{
		put(1, "a", "v1", 0, 10),
		get(2, "a", "", false, 10, 12),
	})
	if !res.Ok {
		t.Fatalf("tied ops must count as concurrent: %+v", res)
	}
}

// TestCheckRandomSequentialHistories cross-validates the search: histories
// generated by actually running a register sequentially (a true total order
// behind the timestamps) must always pass.
func TestCheckRandomSequentialHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var history []Op
		state := map[string]string{}
		now := int64(0)
		keys := []string{"a", "b", "c"}
		for i := 0; i < 60; i++ {
			key := keys[rng.Intn(len(keys))]
			now += int64(rng.Intn(5)) + 1
			invoke := now
			now += int64(rng.Intn(5)) + 1
			ret := now
			if rng.Intn(2) == 0 {
				v := fmt.Sprintf("t%d-%d", trial, i)
				state[key] = v
				history = append(history, put(i%7, key, v, invoke, ret))
			} else {
				v, found := state[key]
				history = append(history, get(i%7, key, v, found, invoke, ret))
			}
		}
		if res := Check(history); !res.Ok {
			t.Fatalf("trial %d: sequential execution reported as violation: %+v", trial, res.Violations)
		}
	}
}

func BenchmarkCheckContendedKey(b *testing.B) {
	// 512 ops on one key from 8 clients with overlapping windows: the
	// worst-case shape the chaos harness produces.
	rng := rand.New(rand.NewSource(42))
	var history []Op
	state := ""
	now := int64(0)
	for i := 0; i < 512; i++ {
		now += int64(rng.Intn(3)) + 1
		invoke := now
		ret := now + int64(rng.Intn(20)) + 1 // overlaps successors
		if rng.Intn(3) == 0 {
			v := fmt.Sprintf("v%d", i)
			state = v
			history = append(history, put(i%8, "hot", v, invoke, ret))
		} else {
			history = append(history, get(i%8, "hot", state, state != "", invoke, ret))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Check(history); !res.Ok {
			b.Fatalf("violation: %+v", res.Violations)
		}
	}
}
