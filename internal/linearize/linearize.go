// Package linearize checks recorded key-value operation histories for
// linearizability against the last-writer-wins register model ShardedKV
// implements.
//
// A history is a flat slice of Op: every acknowledged Put and every
// linearizable Get a set of concurrent clients performed, stamped with
// invocation and return times from one monotonic clock. Check partitions the
// history by key — sound here because a key lives on exactly one shard at a
// time and a shard's log applies its commands in one total order, so
// operations on different keys never constrain each other — and runs a
// porcupine-style search (Wing & Gong's algorithm with Lowe's
// just-in-time-linearization and memoization refinements) over each key's
// sub-history: it looks for a single total order of the key's operations
// that (a) respects real time — if op A returned before op B was invoked, A
// comes first — and (b) steps the register model so that every Get observes
// exactly the latest linearized Put. If no such order exists the history is
// not linearizable and the store broke its contract.
//
// Operations with unknown outcomes — a Put whose connection died after the
// request was sent, so it may or may not have committed — are marked
// Op.Unknown and handled soundly: the checker may place such a Put at any
// point after its invocation (its effect window never closes) or discard it
// entirely (it never committed). An Unknown Get carries no information and
// is ignored.
//
// What the checker can and cannot refute: it decides linearizability of the
// recorded history exactly — a reported violation is a real violation
// (modulo clock correctness), never a false alarm, and a pass means the
// recorded operations are consistent with some legal execution. It cannot
// rule out faults invisible to the recorded history (e.g. a write that was
// acknowledged, silently lost, and never read before the history ended —
// which is why the chaos harness appends a final read of every key), and it
// checks linearizability only, not liveness.
package linearize

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Kind is the operation type of an Op.
type Kind uint8

const (
	// Put writes Op.Input to Op.Key.
	Put Kind = iota
	// Get reads Op.Key, observing Op.Found and (when found) Op.Output.
	Get
)

func (k Kind) String() string {
	if k == Put {
		return "put"
	}
	return "get"
}

// Op is one client operation in a history. Invoke and Return are timestamps
// in nanoseconds from any single monotonic origin; Return < 0 (or
// math.MaxInt64) means the operation never returned and is treated as
// pending forever (concurrent with everything after its invocation).
type Op struct {
	// Client identifies the issuing client; used only in reports.
	Client int
	// Kind is Put or Get.
	Kind Kind
	// Key is the routing key the operation targeted.
	Key string
	// Input is the value a Put wrote.
	Input string
	// Output is the value a Get observed (meaningful only when Found).
	Output string
	// Found reports whether a Get observed the key as present.
	Found bool
	// Unknown marks an operation whose outcome is ambiguous: it may or may
	// not have taken effect. The checker may linearize an Unknown Put
	// anywhere after its invocation or drop it; Unknown Gets are ignored.
	Unknown bool
	// Invoke is the invocation timestamp.
	Invoke int64
	// Return is the return timestamp (see above for pending operations).
	Return int64
}

// Violation is one key whose sub-history admits no linearization.
type Violation struct {
	// Key is the offending key.
	Key string
	// Ops is the key's recorded sub-history, sorted by invocation time.
	Ops []Op
}

// Report renders the violating sub-history as a human-readable table for
// artifacts and failure messages.
func (v Violation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "key %q: no linearization of %d operations\n", v.Key, len(v.Ops))
	for _, op := range v.Ops {
		ret := "pending"
		if r := normalizeReturn(op.Return); r != math.MaxInt64 {
			ret = fmt.Sprintf("%d", r)
		}
		switch op.Kind {
		case Put:
			tag := ""
			if op.Unknown {
				tag = " (outcome unknown)"
			}
			fmt.Fprintf(&b, "  client %d  put %q  [%d, %s]%s\n", op.Client, op.Input, op.Invoke, ret, tag)
		case Get:
			obs := "not found"
			if op.Found {
				obs = fmt.Sprintf("observed %q", op.Output)
			}
			fmt.Fprintf(&b, "  client %d  get -> %s  [%d, %s]\n", op.Client, obs, op.Invoke, ret)
		}
	}
	return b.String()
}

// Result is the outcome of a Check.
type Result struct {
	// Ok reports whether every key's sub-history linearizes.
	Ok bool
	// Keys is the number of distinct keys checked.
	Keys int
	// Ops is the number of operations checked (after dropping Unknown Gets).
	Ops int
	// Violations lists the keys that failed, sorted by key. A violation is
	// definitive: no total order consistent with real time explains the
	// recorded observations.
	Violations []Violation
}

// Check decides whether the history is linearizable with respect to the KV
// register model. Keys are checked independently and concurrently; the
// result aggregates every key's verdict. Check is deterministic: the same
// history yields the same Result.
func Check(history []Op) Result {
	perKey := make(map[string][]Op)
	ops := 0
	for _, op := range history {
		if op.Kind == Get && op.Unknown {
			continue // an unobserved read constrains nothing
		}
		perKey[op.Key] = append(perKey[op.Key], op)
		ops++
	}
	keys := make([]string, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type verdict struct {
		key string
		ok  bool
	}
	verdicts := make([]verdict, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k string) {
			defer wg.Done()
			defer func() { <-sem }()
			verdicts[i] = verdict{key: k, ok: checkKey(perKey[k])}
		}(i, k)
	}
	wg.Wait()

	res := Result{Ok: true, Keys: len(keys), Ops: ops}
	for _, v := range verdicts {
		if v.ok {
			continue
		}
		res.Ok = false
		sub := append([]Op(nil), perKey[v.key]...)
		sort.Slice(sub, func(a, b int) bool { return sub[a].Invoke < sub[b].Invoke })
		res.Violations = append(res.Violations, Violation{Key: v.key, Ops: sub})
	}
	return res
}

// regState is the register model's state: one key's presence and value.
type regState struct {
	found bool
	value string
}

// step applies op to the state, reporting whether the model permits it.
func step(st regState, op Op) (regState, bool) {
	switch op.Kind {
	case Put:
		return regState{found: true, value: op.Input}, true
	default: // Get
		if op.Found != st.found {
			return st, false
		}
		if op.Found && op.Output != st.value {
			return st, false
		}
		return st, true
	}
}

func normalizeReturn(r int64) int64 {
	if r < 0 {
		return math.MaxInt64
	}
	return r
}

// entry is one event (a call or its matching return) in the doubly linked
// event list the search walks. Lifting an operation removes its call and
// return in O(1); unlifting restores them, which is what makes backtracking
// cheap.
type entry struct {
	op         int // index into the key's op slice; call entries only
	isReturn   bool
	match      *entry // call -> return
	prev, next *entry
}

func (e *entry) lift() {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

func (e *entry) unlift() {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// bitset is a fixed-size bit vector identifying a set of linearized ops.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) bitset {
	b[i/64] |= 1 << (uint(i) % 64)
	return b
}

func (b bitset) clear(i int) bitset {
	b[i/64] &^= 1 << (uint(i) % 64)
	return b
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range b {
		h = (h ^ w) * 1099511628211
	}
	return h
}

func (b bitset) equals(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

type cacheEntry struct {
	linearized bitset
	state      regState
}

// checkKey runs the linearizability search over one key's operations.
//
// The algorithm walks the time-ordered event list looking for the next call
// entry whose operation the model permits from the current state; taking it
// tentatively linearizes the op (lift + push on an undo stack), and a seen
// (linearized-set, state) pair — the memoization Lowe added to Wing & Gong —
// prunes re-exploration. Hitting a return entry means some pending operation
// must linearize before that point and none can: backtrack. The search
// succeeds when every operation with a known outcome is linearized; any
// still-unlinearized Unknown operations are then discarded as
// never-committed, which is the sound reading of an ambiguous outcome.
func checkKey(ops []Op) bool {
	// Build the event list: two entries per op, ordered by time with calls
	// before returns on ties (ties mean "cannot order", and calls-first
	// makes tied ops concurrent — permissive, so never a false violation).
	type event struct {
		t        int64
		isReturn bool
		op       int
	}
	events := make([]event, 0, 2*len(ops))
	for i, op := range ops {
		ret := normalizeReturn(op.Return)
		if op.Unknown {
			// An ambiguous outcome's effect window never closes: the command
			// may commit after the error surfaced to the client.
			ret = math.MaxInt64
		}
		events = append(events, event{t: op.Invoke, op: i})
		events = append(events, event{t: ret, isReturn: true, op: i})
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return !events[a].isReturn && events[b].isReturn
	})

	head := &entry{op: -1}
	prev := head
	calls := make([]*entry, len(ops)) // op index -> call entry
	for _, ev := range events {
		e := &entry{op: ev.op, isReturn: ev.isReturn, prev: prev}
		prev.next = e
		prev = e
		if ev.isReturn {
			calls[ev.op].match = e
		} else {
			calls[ev.op] = e
		}
	}

	knownRemaining := 0
	for _, op := range ops {
		if !op.Unknown {
			knownRemaining++
		}
	}

	linearized := newBitset(len(ops))
	cache := make(map[uint64][]cacheEntry)
	seen := func(b bitset, st regState) bool {
		h := b.hash() ^ stateHash(st)
		for _, ce := range cache[h] {
			if ce.state == st && ce.linearized.equals(b) {
				return true
			}
		}
		cache[h] = append(cache[h], cacheEntry{linearized: b.clone(), state: st})
		return false
	}

	type frame struct {
		e     *entry
		state regState
	}
	var stack []frame
	state := regState{}
	e := head.next
	for {
		if knownRemaining == 0 {
			return true // all that remains is Unknown ops: drop them
		}
		if e == nil {
			// Walked past the end without linearizing everything known:
			// backtrack (equivalent to hitting a return with no candidates).
			if len(stack) == 0 {
				return false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.state
			linearized.clear(top.e.op)
			if !ops[top.e.op].Unknown {
				knownRemaining++
			}
			top.e.unlift()
			e = top.e.next
			continue
		}
		if !e.isReturn {
			if newState, ok := step(state, ops[e.op]); ok {
				candidate := linearized.clone().set(e.op)
				if !seen(candidate, newState) {
					stack = append(stack, frame{e: e, state: state})
					state = newState
					linearized.set(e.op)
					if !ops[e.op].Unknown {
						knownRemaining--
					}
					e.lift()
					e = head.next
					continue
				}
			}
			e = e.next
			continue
		}
		// Return entry: every operation that could linearize before this
		// point has been tried. Backtrack the most recent choice.
		if len(stack) == 0 {
			return false
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = top.state
		linearized.clear(top.e.op)
		if !ops[top.e.op].Unknown {
			knownRemaining++
		}
		top.e.unlift()
		e = top.e.next
	}
}

func stateHash(st regState) uint64 {
	h := uint64(1469598103934665603)
	if st.found {
		h = (h ^ 1) * 1099511628211
	}
	for i := 0; i < len(st.value); i++ {
		h = (h ^ uint64(st.value[i])) * 1099511628211
	}
	return h
}
