package linearize_test

import (
	"fmt"

	"rdmaagreement/internal/linearize"
)

// Two clients race a put and a read. The read returned before the put was
// invoked yet observed its value: no legal total order explains that, so the
// checker refutes the history. Flipping the timestamps (the read after the
// put) would make it pass.
func ExampleCheck() {
	history := []linearize.Op{
		{Client: 1, Kind: linearize.Put, Key: "x", Input: "hello", Invoke: 100, Return: 200},
		{Client: 2, Kind: linearize.Get, Key: "x", Found: true, Output: "hello", Invoke: 10, Return: 20},
	}
	res := linearize.Check(history)
	fmt.Println("linearizable:", res.Ok)
	for _, v := range res.Violations {
		fmt.Println("violating key:", v.Key)
	}
	// Output:
	// linearizable: false
	// violating key: x
}
