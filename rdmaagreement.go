// Package rdmaagreement is the public API of this repository: a
// simulation-backed Go implementation of the agreement algorithms from
// "The Impact of RDMA on Agreement" (Aguilera, Ben-David, Guerraoui, Marathe,
// Zablotchi — PODC 2019).
//
// The package exposes four layers:
//
//   - Cluster construction (NewCluster): wire a complete deployment of any of
//     the implemented protocols — the paper's Fast & Robust and Protected
//     Memory Paxos, the Aligned Paxos extension, and the Disk Paxos / Paxos /
//     Fast Paxos baselines — over simulated RDMA memories and a simulated
//     network.
//   - Proposals (Cluster.Proposer(p).Propose): drive consensus instances and
//     observe decisions, causal delay counts and fast-path usage.
//   - Replication (NewLog, NewSharded, NewShardedKV): turn the single-shot
//     protocols into a replicated state machine — one long-lived cluster
//     multiplexing an unbounded sequence of slots, with command batching, a
//     pluggable StateMachine (Propose returns the machine's response),
//     linearizable reads via read-index barriers, and snapshot-driven slot GC
//     that bounds memory independent of log length — and shard keys across
//     independent groups on a consistent-hash ring for horizontal throughput,
//     with live rebalancing (AddShard/RemoveShard drain moved key ranges
//     through the logs they leave and enter, no downtime, no lost or forked
//     keys). ShardedKV is the reference StateMachine client.
//   - Experiments (Experiments, ExperimentIDs): regenerate the tables in
//     EXPERIMENTS.md that reproduce the paper's quantitative claims.
//
// See the examples directory for runnable programs and README.md for an
// architecture overview.
package rdmaagreement

import (
	"rdmaagreement/internal/core"
	"rdmaagreement/internal/harness"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Protocol identifies an agreement protocol.
type Protocol = core.Protocol

// The available protocols.
const (
	// ProtocolFastRobust is the paper's 2-deciding weak Byzantine agreement
	// algorithm (Cheap Quorum + Preferential Paxos, Theorem 4.9).
	ProtocolFastRobust = core.ProtocolFastRobust
	// ProtocolProtectedMemoryPaxos is the paper's 2-deciding crash consensus
	// with n ≥ f_P+1 processes (Theorem 5.1).
	ProtocolProtectedMemoryPaxos = core.ProtocolProtectedMemoryPaxos
	// ProtocolAlignedPaxos tolerates any minority of the combined
	// process+memory set (§5.2).
	ProtocolAlignedPaxos = core.ProtocolAlignedPaxos
	// ProtocolDiskPaxos is the shared-memory-only baseline (≥4 delays).
	ProtocolDiskPaxos = core.ProtocolDiskPaxos
	// ProtocolPaxos is the classic message-passing baseline.
	ProtocolPaxos = core.ProtocolPaxos
	// ProtocolFastPaxos is the fast message-passing baseline.
	ProtocolFastPaxos = core.ProtocolFastPaxos
)

// Protocols lists every protocol in a stable order.
func Protocols() []Protocol { return core.Protocols() }

// Options configure a cluster (topology, failure bounds, timing).
type Options = core.Options

// Cluster is a fully wired deployment of one protocol over simulated RDMA
// memories and a simulated network.
type Cluster = core.Cluster

// Result is the outcome of one proposal.
type Result = core.Result

// Proposer is the uniform per-process handle used to propose values.
type Proposer = core.Proposer

// Value is the opaque payload agreed upon.
type Value = types.Value

// ProcID identifies a process.
type ProcID = types.ProcID

// MemID identifies a memory.
type MemID = types.MemID

// Recorder collects structured protocol events (proposals, permission
// changes, panics, decisions) for inspection.
type Recorder = trace.Recorder

// Table is a formatted experiment result.
type Table = harness.Table

// NewCluster builds a cluster running the given protocol.
func NewCluster(protocol Protocol, opts Options) (*Cluster, error) {
	return core.NewCluster(protocol, opts)
}

// Experiments returns the experiment runners keyed by identifier (e1, e2, …)
// that regenerate the tables recorded in EXPERIMENTS.md.
func Experiments() map[string]func() (Table, error) { return harness.Experiments() }

// ExperimentIDs lists the experiment identifiers in a stable order.
func ExperimentIDs() []string { return harness.ExperimentIDs() }
