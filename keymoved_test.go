package rdmaagreement

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdmaagreement/internal/shard"
)

// TestKeyMovedErrorCarriesOwner pins the structured refusal contract the
// network layer routes on: a stale-routed propose fails with a *KeyMovedError
// that still satisfies errors.Is(err, ErrKeyMoved) and names the shard that
// now owns the key.
func TestKeyMovedErrorCarriesOwner(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Find a key the grown ring hands to the new shard.
	oldRing := kv.s.ringSnapshot().Clone()
	grown := oldRing.Clone()
	grown.Add("shard-2")
	var key, oldOwner string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe/%d", i)
		if from, to, moved := shard.Moved(oldRing, grown, k); moved && to == "shard-2" {
			key, oldOwner = k, from
			break
		}
	}
	if _, _, err := kv.Put(ctx, key, "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := kv.AddShard(ctx, "shard-2"); err != nil {
		t.Fatalf("AddShard: %v", err)
	}

	cmd, err := encodeKVCommand(key, "stale")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := encodeEnvelope(shardEnvelope{Key: key, Cmd: cmd})
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	_, _, perr := kv.ShardLog(oldOwner).Propose(ctx, env)
	if perr == nil {
		t.Fatal("stale-routed propose succeeded, want KeyMovedError")
	}
	if !errors.Is(perr, ErrKeyMoved) {
		t.Fatalf("errors.Is(err, ErrKeyMoved) = false for %v", perr)
	}
	var moved *KeyMovedError
	if !errors.As(perr, &moved) {
		t.Fatalf("errors.As(*KeyMovedError) = false for %v", perr)
	}
	if moved.Owner != "shard-2" || moved.From != oldOwner || moved.Key != key {
		t.Fatalf("KeyMovedError = %+v, want owner shard-2, from %s, key %q", moved, oldOwner, key)
	}
}

// TestGetWithContext covers the ctx-aware stale read: it serves committed
// values, and a dead context fails fast instead of blocking on the store.
func TestGetWithContext(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	if _, _, err := kv.Put(ctx, "k", "v1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, ok, err := kv.GetWithContext(ctx, "k"); err != nil || !ok || v != "v1" {
		t.Fatalf("GetWithContext = %q, %v, %v; want \"v1\", true, nil", v, ok, err)
	}
	if _, ok, err := kv.GetWithContext(ctx, "missing"); err != nil || ok {
		t.Fatalf("GetWithContext(missing) = ok=%v err=%v; want false, nil", ok, err)
	}

	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, _, err := kv.GetWithContext(dead, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetWithContext with dead ctx = %v, want context.Canceled", err)
	}
}
