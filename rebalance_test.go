package rdmaagreement

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/shard"
)

// ringSnapshot reads the committed ring under s.mu for test inspection.
func (s *Sharded) ringSnapshot() *shard.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

// rawFoundIn counts the groups whose machine actually holds key, by querying
// every shard's log with a RAW (non-envelope) query — which bypasses the
// ownership gate and so sees the machine's true contents, hidden ceded state
// included. It is the fork detector: a correctly rebalanced key lives in
// exactly one machine.
func rawFoundIn(t *testing.T, ctx context.Context, kv *ShardedKV, key string) int {
	t.Helper()
	found := 0
	for _, name := range kv.Shards() {
		resp, err := kv.ShardLog(name).Read(ctx, []byte(key))
		if err != nil {
			t.Fatalf("raw read of %q on %s: %v", key, name, err)
		}
		if _, ok, err := decodeKVResult(resp); err != nil {
			t.Fatalf("raw read of %q on %s: decode: %v", key, name, err)
		} else if ok {
			found++
		}
	}
	return found
}

// TestAddShardMovesKeysExactlyOnce grows a quiet 2-shard store to 3 shards
// and pins the handoff's accounting: exactly the ring-diff's keys move, each
// key remains readable with its value, lives in exactly one group's machine,
// and routes to the new ring's owner.
func TestAddShardMovesKeysExactlyOnce(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const n = 40
	for i := 0; i < n; i++ {
		if _, _, err := kv.Put(ctx, fmt.Sprintf("user/%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}

	oldRing := kv.s.ringSnapshot().Clone()
	if err := kv.AddShard(ctx, "shard-2"); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	newRing := kv.s.ringSnapshot()

	// The ring diff predicts the migrated set.
	predicted := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user/%d", i)
		from, to, moved := shard.Moved(oldRing, newRing, key)
		if !moved {
			continue
		}
		predicted++
		if to != "shard-2" {
			t.Fatalf("key %q moved %s -> %s, not to the added shard", key, from, to)
		}
	}
	if predicted == 0 {
		t.Fatalf("ring diff predicts no moved key out of %d — the test key set is degenerate", n)
	}
	stats := kv.Stats()
	if stats.Migrated != uint64(predicted) {
		t.Fatalf("Stats.Migrated = %d, ring diff predicts %d moved keys", stats.Migrated, predicted)
	}
	if stats.Rebalances != 1 || stats.Shards != 3 {
		t.Fatalf("Stats = {Rebalances:%d Shards:%d}, want {1 3}", stats.Rebalances, stats.Shards)
	}

	// Every key: right value, right owner, exactly one physical home.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user/%d", i)
		v, ok, err := kv.GetLinearizable(ctx, key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("GetLinearizable(%s) = %q, %v, %v after rebalance", key, v, ok, err)
		}
		if got, want := kv.Shard(key), newRing.Shard(key); got != want {
			t.Fatalf("Shard(%s) = %s, new ring routes to %s", key, got, want)
		}
		if homes := rawFoundIn(t, ctx, kv, key); homes != 1 {
			t.Fatalf("key %q lives in %d groups, want exactly 1", key, homes)
		}
	}
	if got := kv.Shards(); len(got) != 3 || got[2] != "shard-2" {
		t.Fatalf("Shards() = %v after AddShard", got)
	}
}

// TestRemoveShardDrains shrinks a 3-shard store to 2 and checks the removed
// group's whole key space scattered to the survivors with nothing lost or
// forked, and that the removed shard's log is gone.
func TestRemoveShardDrains(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 3,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const n = 30
	removedOwned := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item/%d", i)
		if _, _, err := kv.Put(ctx, key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		if kv.Shard(key) == "shard-1" {
			removedOwned++
		}
	}
	if removedOwned == 0 {
		t.Fatalf("no test key owned by shard-1 — degenerate key set")
	}

	if err := kv.RemoveShard(ctx, "shard-1"); err != nil {
		t.Fatalf("RemoveShard: %v", err)
	}
	if got := kv.Shards(); len(got) != 2 {
		t.Fatalf("Shards() = %v after RemoveShard", got)
	}
	if kv.ShardLog("shard-1") != nil {
		t.Fatalf("removed shard still has a log")
	}
	stats := kv.Stats()
	if stats.Migrated != uint64(removedOwned) {
		t.Fatalf("Stats.Migrated = %d, removed shard owned %d keys", stats.Migrated, removedOwned)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item/%d", i)
		v, ok, err := kv.GetLinearizable(ctx, key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("GetLinearizable(%s) = %q, %v, %v after RemoveShard", key, v, ok, err)
		}
		if homes := rawFoundIn(t, ctx, kv, key); homes != 1 {
			t.Fatalf("key %q lives in %d surviving groups, want exactly 1", key, homes)
		}
	}
	// Removing an unknown shard is a no-op; removing down to zero is refused.
	if err := kv.RemoveShard(ctx, "shard-1"); err != nil {
		t.Fatalf("second RemoveShard: %v, want no-op", err)
	}
	if err := kv.RemoveShard(ctx, "shard-0"); err != nil {
		t.Fatalf("RemoveShard(shard-0): %v", err)
	}
	if err := kv.RemoveShard(ctx, "shard-2"); err == nil {
		t.Fatalf("RemoveShard of the last shard succeeded")
	}
}

// TestRebalanceUnderLiveTraffic is the tentpole's safety test, run under the
// race detector in CI: writers and linearizable readers hammer the store
// while a shard is added, and afterwards every acknowledged write must be
// readable with its value and live in exactly one group — no lost keys, no
// forked keys, no downtime.
func TestRebalanceUnderLiveTraffic(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log: LogOptions{
			Cluster:  Options{Processes: 3, Memories: 3, MemoryLatency: 200 * time.Microsecond},
			MaxBatch: 4,
		},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	const writers = 4
	var (
		mu    sync.Mutex
		acked = make(map[string]string)
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key, value := fmt.Sprintf("w%d/%d", w, i), fmt.Sprintf("v%d-%d", w, i)
				if _, _, err := kv.Put(ctx, key, value); err != nil {
					t.Errorf("Put(%s) during rebalance: %v", key, err)
					return
				}
				mu.Lock()
				acked[key] = value
				mu.Unlock()
			}
		}(w)
	}
	// A reader pounding linearizable reads across the handoff: it must never
	// observe an error or a missing acked key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			key, want := fmt.Sprintf("w%d/%d", i%writers, 0), acked[fmt.Sprintf("w%d/%d", i%writers, 0)]
			mu.Unlock()
			if want == "" {
				continue // that writer has not acked its first put yet
			}
			v, ok, err := kv.GetLinearizable(ctx, key)
			if err != nil || !ok || v != want {
				t.Errorf("GetLinearizable(%s) during rebalance = %q, %v, %v; want %q", key, v, ok, err, want)
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond) // let traffic build
	if err := kv.AddShard(ctx, "shard-2"); err != nil {
		t.Fatalf("AddShard under live traffic: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // traffic on the new topology
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatalf("no write was acknowledged during the rebalance")
	}
	for key, want := range acked {
		v, ok, err := kv.GetLinearizable(ctx, key)
		if err != nil || !ok || v != want {
			t.Fatalf("committed key %q = %q, %v, %v after rebalance; want %q (lost write)", key, v, ok, err, want)
		}
		if homes := rawFoundIn(t, ctx, kv, key); homes != 1 {
			t.Fatalf("committed key %q lives in %d groups, want exactly 1 (forked key)", key, homes)
		}
	}
	t.Logf("rebalance under traffic: %d acked writes, stats %+v", len(acked), kv.Stats())
}

// TestOwnershipGateRefusesMovedKey pins the gate that closes the
// route-then-commit race: after a rebalance, the OLD owner's machine commits
// a typed refusal for a moved key proposed directly at its log (the race's
// stand-in), while the public API transparently serves the key at its new
// owner.
func TestOwnershipGateRefusesMovedKey(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Find a key that the grown ring moves to the new shard.
	oldRing := kv.s.ringSnapshot().Clone()
	grown := oldRing.Clone()
	grown.Add("shard-2")
	var key, oldOwner string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe/%d", i)
		if from, to, moved := shard.Moved(oldRing, grown, k); moved && to == "shard-2" {
			key, oldOwner = k, from
			break
		}
	}
	if _, _, err := kv.Put(ctx, key, "before"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := kv.AddShard(ctx, "shard-2"); err != nil {
		t.Fatalf("AddShard: %v", err)
	}

	// The race's stand-in: a write that routed to the old owner before the
	// move but commits after it. Its entry commits, but the machine refuses
	// it — deterministically, on every replica — instead of forking the key.
	cmd, err := encodeKVCommand(key, "split-brain")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := encodeEnvelope(shardEnvelope{Key: key, Cmd: cmd})
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if _, _, err := kv.ShardLog(oldOwner).Propose(ctx, env); !errors.Is(err, ErrKeyMoved) {
		t.Fatalf("stale-routed propose err = %v, want ErrKeyMoved", err)
	}
	// The refused write must not have resurrected the key at the old owner.
	if homes := rawFoundIn(t, ctx, kv, key); homes != 1 {
		t.Fatalf("key %q lives in %d groups after refused write, want 1", key, homes)
	}
	// And the public API serves the key at its new home, via forwarding-aware
	// routing.
	if v, ok, err := kv.GetLinearizable(ctx, key); err != nil || !ok || v != "before" {
		t.Fatalf("GetLinearizable = %q, %v, %v; want \"before\"", v, ok, err)
	}
	if _, _, err := kv.Put(ctx, key, "after"); err != nil {
		t.Fatalf("Put after move: %v", err)
	}
	if v, _ := kv.Get(key); v != "after" {
		t.Fatalf("Get after move = %q, want \"after\"", v)
	}
}

// TestStaleReadSurvivesStalledLeader is the regression test for the stale-
// read routing bug: Sharded.StaleRead used to read from Cluster.Leader(),
// which mid-takeover can still name the deposed holder — a crashed process
// whose frozen learner view stops advancing. StaleRead must keep answering
// throughout the stall, the takeover, and after it.
func TestStaleReadSurvivesStalledLeader(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 1,
		Log: LogOptions{
			Cluster:        Options{Processes: 3, Memories: 3, LeaseDuration: 150 * time.Millisecond},
			ReplicaCatchUp: 300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	if _, _, err := kv.Put(ctx, "k", "v1"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	l := kv.ShardLog(kv.Shard("k"))
	epochBefore := l.Cluster().LeaseEpoch()
	old := l.Cluster().LeaseHolder()
	l.Cluster().CrashProcess(old)

	// Poll continuously through the takeover: every StaleRead must answer
	// the committed value — no error, no empty answer from a frozen view.
	deadline := time.Now().Add(15 * time.Second)
	for l.Cluster().LeaseEpoch() == epochBefore {
		if v, ok := kv.Get("k"); !ok || v != "v1" {
			t.Fatalf("Get(k) mid-takeover = %q, %v; want \"v1\"", v, ok)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no takeover after stalling %s", old)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// After the takeover a write through the new holder must become visible
	// to stale reads: the answer comes from a live, advancing view, not the
	// deposed holder's frozen one.
	if _, _, err := kv.Put(ctx, "k", "v2"); err != nil {
		t.Fatalf("Put after takeover: %v", err)
	}
	readDeadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := kv.Get("k"); ok && v == "v2" {
			break
		}
		if time.Now().After(readDeadline) {
			v, ok := kv.Get("k")
			t.Fatalf("Get(k) after takeover write = %q, %v; never advanced to \"v2\"", v, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedStatsDepthIgnoresClosedShards pins the PipelineDepth
// normalization: a closed group reports depth 0 and must be SKIPPED by the
// cross-shard minimum instead of reading as "most backed off"; only when no
// live group remains does the aggregate report 0.
func TestShardedStatsDepthIgnoresClosedShards(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}, Pipeline: 4},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()

	if got := kv.Stats().PipelineDepth; got != 4 {
		t.Fatalf("PipelineDepth = %d with both shards live, want 4", got)
	}
	kv.ShardLog("shard-0").Close()
	if got := kv.Stats().PipelineDepth; got != 4 {
		t.Fatalf("PipelineDepth = %d with one shard closed, want 4 (the live minimum, not the corpse's 0)", got)
	}
	kv.ShardLog("shard-1").Close()
	if got := kv.Stats().PipelineDepth; got != 0 {
		t.Fatalf("PipelineDepth = %d with every shard closed, want 0", got)
	}
}
