package rdmaagreement

import (
	"context"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := NewCluster(ProtocolFastRobust, Options{Processes: 3, Memories: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, Value("public-api"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !res.Value.Equal(Value("public-api")) {
		t.Fatalf("decided %v", res.Value)
	}
	if !res.FastPath || res.DecisionDelays != 2 {
		t.Fatalf("expected a 2-delay fast-path decision, got %+v", res)
	}
}

func TestPublicAPIProtocolList(t *testing.T) {
	if len(Protocols()) != 6 {
		t.Fatalf("expected 6 protocols, got %v", Protocols())
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	exps := Experiments()
	ids := ExperimentIDs()
	if len(exps) != len(ids) {
		t.Fatalf("experiment registry and id list out of sync")
	}
	// Run the cheapest experiment end to end through the public API.
	table, err := exps["e5"]()
	if err != nil {
		t.Fatalf("e5: %v", err)
	}
	if len(table.Rows) == 0 || table.String() == "" {
		t.Fatalf("e5 produced an empty table")
	}
}

func TestPublicAPIRecorder(t *testing.T) {
	rec := &Recorder{}
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 2, Memories: 3, Recorder: rec})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cluster.Proposer(1).Propose(ctx, Value("traced")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if len(rec.Decisions()) == 0 {
		t.Fatalf("recorder captured no decision events")
	}
}
