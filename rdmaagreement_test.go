package rdmaagreement

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := NewCluster(ProtocolFastRobust, Options{Processes: 3, Memories: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, Value("public-api"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !res.Value.Equal(Value("public-api")) {
		t.Fatalf("decided %v", res.Value)
	}
	if !res.FastPath || res.DecisionDelays != 2 {
		t.Fatalf("expected a 2-delay fast-path decision, got %+v", res)
	}
}

func TestPublicAPIProtocolList(t *testing.T) {
	if len(Protocols()) != 6 {
		t.Fatalf("expected 6 protocols, got %v", Protocols())
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	exps := Experiments()
	ids := ExperimentIDs()
	if len(exps) != len(ids) {
		t.Fatalf("experiment registry and id list out of sync")
	}
	// Run the cheapest experiment end to end through the public API.
	table, err := exps["e5"]()
	if err != nil {
		t.Fatalf("e5: %v", err)
	}
	if len(table.Rows) == 0 || table.String() == "" {
		t.Fatalf("e5 produced an empty table")
	}
}

func TestPublicAPIRecorder(t *testing.T) {
	rec := &Recorder{}
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 2, Memories: 3, Recorder: rec})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cluster.Proposer(1).Propose(ctx, Value("traced")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if len(rec.Decisions()) == 0 {
		t.Fatalf("recorder captured no decision events")
	}
}

func TestPublicAPILog(t *testing.T) {
	l, err := NewLog(LogOptions{Cluster: Options{Processes: 3, Memories: 3}})
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		index, _, err := l.Propose(ctx, []byte{byte(i)})
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		if index != uint64(i) {
			t.Fatalf("Propose(%d): index = %d, want %d", i, index, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", l.Len())
	}
}

func TestPublicAPIShardedKV(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i, k := range keys {
		shardName, _, err := kv.Put(ctx, k, k+"-value")
		if err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		if shardName != kv.Shard(k) {
			t.Fatalf("Put(%s) committed on %s, ring routes to %s", k, shardName, kv.Shard(k))
		}
		if got := kv.Len(); got != uint64(i+1) {
			t.Fatalf("Len() = %d after %d puts", got, i+1)
		}
	}
	for _, k := range keys {
		v, ok := kv.Get(k)
		if !ok || v != k+"-value" {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatalf("Get(missing) found a value")
	}
}

// counterMachine is a minimal non-KV workload for the generic Sharded layer:
// any command increments, queries answer the count. It demonstrates that a
// new workload is a StateMachine plugin, not a fork of ShardedKV.
type counterMachine struct{ n int }

func (m *counterMachine) Apply(LogEntry) ([]byte, error) {
	m.n++
	return []byte(fmt.Sprintf("%d", m.n)), nil
}
func (m *counterMachine) Query([]byte) ([]byte, error) { return []byte(fmt.Sprintf("%d", m.n)), nil }
func (m *counterMachine) Snapshot() ([]byte, error)    { return []byte(fmt.Sprintf("%d", m.n)), nil }
func (m *counterMachine) Restore(snapshot []byte, _ uint64) error {
	_, err := fmt.Sscanf(string(snapshot), "%d", &m.n)
	return err
}

func TestPublicAPISharded(t *testing.T) {
	s, err := NewSharded(func() StateMachine { return &counterMachine{} }, ShardedOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	key := "bumps"
	for i := 1; i <= 3; i++ {
		_, _, resp, err := s.Propose(ctx, key, []byte("bump"))
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		if string(resp) != fmt.Sprintf("%d", i) {
			t.Fatalf("Propose(%d) response = %q, want %d", i, resp, i)
		}
	}
	got, err := s.Read(ctx, key, nil)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "3" {
		t.Fatalf("Read = %q, want 3", got)
	}
	if stale, err := s.StaleRead(key, nil); err != nil || string(stale) != "3" {
		t.Fatalf("StaleRead = %q, %v; want 3", stale, err)
	}
}

func TestPublicAPIShardedKVLinearizableAndForeign(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, _, err := kv.Put(ctx, "alpha", "one"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := kv.GetLinearizable(ctx, "alpha")
	if err != nil || !ok || v != "one" {
		t.Fatalf("GetLinearizable(alpha) = %q, %v, %v; want \"one\", true, nil", v, ok, err)
	}
	if _, ok, err := kv.GetLinearizable(ctx, "missing"); err != nil || ok {
		t.Fatalf("GetLinearizable(missing) = ok=%v, err=%v; want false, nil", ok, err)
	}

	// A raw, untagged blob appended through the shard's log must be reported
	// as foreign — not guessed into a KV write (the old decoder applied any
	// JSON-shaped blob, `null` included).
	shardLog := kv.ShardLog(kv.Shard("alpha"))
	_, _, err = shardLog.Propose(ctx, []byte(`{"key":"alpha","value":"hijacked"}`))
	if !errors.Is(err, ErrForeignCommand) {
		t.Fatalf("raw Propose response err = %v, want ErrForeignCommand", err)
	}
	if n := kv.ForeignEntries(); n != 1 {
		t.Fatalf("ForeignEntries() = %d, want exactly 1 (one entry, counted once — not once per replica machine)", n)
	}
	if v, _ := kv.Get("alpha"); v != "one" {
		t.Fatalf("Get(alpha) = %q after foreign entry, want \"one\" (store must not apply untagged blobs)", v)
	}
}

func TestPublicAPILifecycleErrors(t *testing.T) {
	l, err := NewLog(LogOptions{Cluster: Options{Processes: 3, Memories: 3}})
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := l.Propose(ctx, []byte("x")); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Propose after Close: err = %v, want ErrLogClosed", err)
	}
	if _, err := l.Read(ctx, nil); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Read after Close: err = %v, want ErrLogClosed", err)
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	// All shard groups record into one deployment-wide registry by default,
	// so the store-level snapshot is the aggregate across shards.
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, k := range keys {
		if _, _, err := kv.Put(ctx, k, k+"-value"); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}

	m := kv.Metrics()
	if m.Enqueued != uint64(len(keys)) {
		t.Fatalf("Metrics().Enqueued = %d, want %d", m.Enqueued, len(keys))
	}
	if m.EndToEnd.Count != uint64(len(keys)) || m.EndToEnd.P50 <= 0 {
		t.Fatalf("end-to-end stage not populated: %+v", m.EndToEnd)
	}
	if m.Agreement.Count == 0 || m.Agreement.P50 <= 0 {
		t.Fatalf("agreement stage not populated: %+v", m.Agreement)
	}
	if m.Slots == 0 || m.Committed < uint64(len(keys)) {
		t.Fatalf("slot counters not populated: %+v", m)
	}

	// The registry behind the snapshot serves text exposition.
	var buf bytes.Buffer
	if err := kv.Registry().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("smr_e2e_seconds")) {
		t.Fatalf("exposition missing e2e histogram:\n%s", buf.String())
	}

	// A caller-supplied registry aggregates on top of whatever else records
	// into it.
	reg := NewMetricsRegistry()
	l, err := NewLog(LogOptions{
		Cluster: Options{Processes: 3, Memories: 3},
		Metrics: reg,
	})
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	defer l.Close()
	if _, _, err := l.Propose(ctx, []byte("solo")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if l.Registry() != reg {
		t.Fatal("Log.Registry() must return the caller-supplied registry")
	}
	if got := l.Metrics().Enqueued; got != 1 {
		t.Fatalf("custom-registry Enqueued = %d, want 1", got)
	}
}
