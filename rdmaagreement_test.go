package rdmaagreement

import (
	"context"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := NewCluster(ProtocolFastRobust, Options{Processes: 3, Memories: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, Value("public-api"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !res.Value.Equal(Value("public-api")) {
		t.Fatalf("decided %v", res.Value)
	}
	if !res.FastPath || res.DecisionDelays != 2 {
		t.Fatalf("expected a 2-delay fast-path decision, got %+v", res)
	}
}

func TestPublicAPIProtocolList(t *testing.T) {
	if len(Protocols()) != 6 {
		t.Fatalf("expected 6 protocols, got %v", Protocols())
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	exps := Experiments()
	ids := ExperimentIDs()
	if len(exps) != len(ids) {
		t.Fatalf("experiment registry and id list out of sync")
	}
	// Run the cheapest experiment end to end through the public API.
	table, err := exps["e5"]()
	if err != nil {
		t.Fatalf("e5: %v", err)
	}
	if len(table.Rows) == 0 || table.String() == "" {
		t.Fatalf("e5 produced an empty table")
	}
}

func TestPublicAPIRecorder(t *testing.T) {
	rec := &Recorder{}
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 2, Memories: 3, Recorder: rec})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cluster.Proposer(1).Propose(ctx, Value("traced")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if len(rec.Decisions()) == 0 {
		t.Fatalf("recorder captured no decision events")
	}
}

func TestPublicAPILog(t *testing.T) {
	l, err := NewLog(LogOptions{Cluster: Options{Processes: 3, Memories: 3}})
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		index, err := l.Apply(ctx, []byte{byte(i)})
		if err != nil {
			t.Fatalf("Apply(%d): %v", i, err)
		}
		if index != uint64(i) {
			t.Fatalf("Apply(%d): index = %d, want %d", i, index, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", l.Len())
	}
}

func TestPublicAPIShardedKV(t *testing.T) {
	kv, err := NewShardedKV(ShardedKVOptions{
		Shards: 2,
		Log:    LogOptions{Cluster: Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i, k := range keys {
		shardName, _, err := kv.Put(ctx, k, k+"-value")
		if err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		if shardName != kv.Shard(k) {
			t.Fatalf("Put(%s) committed on %s, ring routes to %s", k, shardName, kv.Shard(k))
		}
		if got := kv.Len(); got != uint64(i+1) {
			t.Fatalf("Len() = %d after %d puts", got, i+1)
		}
	}
	for _, k := range keys {
		v, ok := kv.Get(k)
		if !ok || v != k+"-value" {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatalf("Get(missing) found a value")
	}
}
