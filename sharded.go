package rdmaagreement

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
	"rdmaagreement/internal/trace"
)

// ShardedOptions configure a Sharded replicated state machine.
type ShardedOptions struct {
	// Shards is the number of independent replicated-log groups. Zero means 4.
	Shards int
	// VirtualNodes is the ring's virtual-node count per shard. Zero means
	// shard.DefaultVirtualNodes.
	VirtualNodes int
	// Log configures each shard's replicated log (protocol, topology,
	// batching, snapshot interval). The zero value is a 3-process, 3-memory
	// Protected Memory Paxos group. Log.NewSM is overridden by the factory
	// passed to NewSharded.
	Log LogOptions
}

// Rebalancing errors, matchable with errors.Is.
var (
	// ErrKeyMoved is the application-level rejection a shard group commits
	// for a command or query whose key it no longer owns: a rebalance moved
	// the key's range away. The Sharded layer handles it internally by
	// retrying against the new owner (counted in ShardedStats.Forwarded);
	// only raw log-level clients, which bypass routing, observe it directly.
	ErrKeyMoved = errors.New("sharded: key is owned by another shard")
	// ErrNoMigrator is returned by AddShard/RemoveShard when the application
	// StateMachine does not implement Migrator (or the groups are plain logs
	// with no machine at all): there is no way to carve the moved key range
	// out of an opaque machine.
	ErrNoMigrator = errors.New("sharded: state machine does not implement Migrator; live rebalancing unavailable")
	// ErrRebalanceInProgress is returned by AddShard/RemoveShard while a
	// DIFFERENT rebalance is incomplete. Re-invoking the same operation
	// resumes it instead.
	ErrRebalanceInProgress = errors.New("sharded: another rebalance is still incomplete; retry it to completion first")
)

// KeyMovedError is the structured form of an ErrKeyMoved refusal: it names
// the group that refused the operation and the group its committed ring now
// routes the key to, so a routing layer that learns of the refusal — the
// network client in particular — can re-route directly instead of
// rediscovering the whole ring. It matches both errors.Is(err, ErrKeyMoved)
// and errors.As(err, &KeyMovedError{}).
type KeyMovedError struct {
	// Key is the routing key the refused operation carried.
	Key string
	// From is the group that committed the refusal (the key's old owner).
	From string
	// Owner is the group From's committed ring config routes the key to.
	Owner string
	// Index is the log index of the committed refusal; 0 for query-path
	// refusals, which commit nothing.
	Index uint64
}

func (e *KeyMovedError) Error() string {
	if e.Index > 0 {
		return fmt.Sprintf("%v: %q left %s for %s (index %d)", ErrKeyMoved, e.Key, e.From, e.Owner, e.Index)
	}
	return fmt.Sprintf("%v: %q is not served by %s (owner %s)", ErrKeyMoved, e.Key, e.From, e.Owner)
}

// Unwrap keeps the errors.Is(err, ErrKeyMoved) contract every existing
// retry loop relies on.
func (e *KeyMovedError) Unwrap() error { return ErrKeyMoved }

// Migrator is optionally implemented by application state machines that
// support live shard rebalancing (Sharded.AddShard / RemoveShard). Both
// methods run inside the apply of a committed migration command — on the
// authoritative machine and on every replica view, in log order — so they
// must be deterministic exactly like Apply: given the same machine state and
// the same predicate, every replica must remove (or merge) the same sub-state
// and MigrateOut must serialize it to the same bytes.
type Migrator interface {
	// MigrateOut removes from the machine the sub-state of every key for
	// which moved reports true and returns its serialization plus the number
	// of keys removed. It is the export half of a handoff: the returned bytes
	// are committed into the destination group via MigrateIn.
	MigrateOut(moved func(key string) bool) (data []byte, keys int, err error)
	// MigrateIn merges a MigrateOut export into the machine, keeping only the
	// keys for which owned reports true (a removed shard's export fans out to
	// every surviving group; each keeps its own share). It returns the number
	// of keys merged.
	MigrateIn(data []byte, owned func(key string) bool) (keys int, err error)
}

// ShardedStats aggregate the per-shard log counters (see LogStats for the
// embedded fields' semantics: sums across shards, except Epoch is the maximum
// and PipelineDepth the minimum over LIVE groups — a closed group reports
// depth 0 and is skipped, so it cannot masquerade as the most backed-off one)
// plus the rebalancing view.
type ShardedStats struct {
	LogStats
	// Shards is the current number of groups (AddShard/RemoveShard change it).
	Shards int
	// Rebalances counts completed AddShard/RemoveShard operations.
	Rebalances uint64
	// Migrated counts keys handed off between groups by those rebalances.
	Migrated uint64
	// Forwarded counts operations (Propose/Read/StaleRead) that were refused
	// by a key's old owner mid-rebalance and retried against the new owner.
	Forwarded uint64
}

// shardMagic tags every command and query the Sharded layer submits to its
// groups. The envelope carries the application payload plus the routing key,
// which is what lets each group's ownership gate check — at APPLY time, in
// log order — that the group still owns the key: the only point where the
// route-then-commit race of a live rebalance can be closed. Raw log-level
// traffic (no envelope) bypasses the gate exactly as it bypasses routing.
//
// Two wire forms share the gate. Key-bound application payloads — the hot
// path, one per Propose/Read — ride the binary framing under shardBinMagic
// (magic | keylen uvarint | key | payload), decoded without allocation.
// Migration commands, rare and structured, stay JSON under shardMagic, which
// is also still decoded for envelopes committed by pre-binary code.
var (
	shardMagic    = []byte("rshd\x00\x01")
	shardBinMagic = []byte("rshb\x00\x01")
)

// shardEnvelope is the wire form of one sharded command or query: either an
// application payload bound to its routing key, or a migration command.
type shardEnvelope struct {
	Key     string      `json:"key,omitempty"`
	Cmd     []byte      `json:"cmd,omitempty"`
	Migrate *migrateCmd `json:"migrate,omitempty"`
}

// migrateCmd is a rebalance step committed through a group's own log —
// membership changes ride the logs they affect, the Chubby/ZooKeeper
// reconfiguration-via-log pattern. The ring after the change travels as
// (Shards, VNodes): every machine rebuilds it deterministically, so the
// ownership predicate needs no out-of-band state.
type migrateCmd struct {
	// Out marks the export half (committed in the ceding group); Ack marks
	// the post-import acknowledgement that lets the ceding group drop its
	// export outbox; otherwise this is an import (committed in a receiving
	// group).
	Out bool `json:"out,omitempty"`
	Ack bool `json:"ack,omitempty"`
	// Epoch is the migration epoch: one per rebalance operation, strictly
	// increasing. It makes re-proposed migration commands idempotent — a
	// duplicate export replays its stored result, a duplicate import is a
	// no-op — which is what lets an interrupted rebalance be retried safely.
	Epoch uint64 `json:"epoch"`
	// Shards and VNodes describe the ring after the rebalance.
	Shards []string `json:"shards"`
	VNodes int      `json:"vnodes"`
	// Group is the group this command is committed in.
	Group string `json:"group"`
	// Source is the ceding group (imports only).
	Source string `json:"source,omitempty"`
	// Data is the ceded sub-state (imports only).
	Data []byte `json:"data,omitempty"`
}

// migrateResult is the Apply response of a migration command: the export's
// bytes (out) and the number of keys exported or merged.
type migrateResult struct {
	Data []byte `json:"data,omitempty"`
	Keys int    `json:"keys"`
}

func encodeEnvelope(env shardEnvelope) ([]byte, error) {
	if env.Migrate == nil {
		out := make([]byte, 0, len(shardBinMagic)+binary.MaxVarintLen64+len(env.Key)+len(env.Cmd))
		out = append(out, shardBinMagic...)
		out = binary.AppendUvarint(out, uint64(len(env.Key)))
		out = append(out, env.Key...)
		out = append(out, env.Cmd...)
		return out, nil
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("sharded: encode envelope: %w", err)
	}
	return append(append([]byte(nil), shardMagic...), blob...), nil
}

// decodeEnvelopeParts splits an enveloped payload into its routing key, the
// inner payload, and (JSON envelopes only) a migration command. The returned
// key and cmd alias raw for the binary framing — callers on the apply path
// convert the key to a string only when they actually need one. ok=false
// means raw carries neither tag: a raw log-level payload that bypasses the
// gate.
func decodeEnvelopeParts(raw []byte) (key, cmd []byte, mig *migrateCmd, ok bool) {
	if bytes.HasPrefix(raw, shardBinMagic) {
		rest := raw[len(shardBinMagic):]
		klen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, nil, false
		}
		rest = rest[n:]
		if klen > uint64(len(rest)) {
			return nil, nil, nil, false
		}
		return rest[:klen:klen], rest[klen:], nil, true
	}
	if bytes.HasPrefix(raw, shardMagic) {
		var env shardEnvelope
		if err := json.Unmarshal(raw[len(shardMagic):], &env); err != nil {
			return nil, nil, nil, false
		}
		return []byte(env.Key), env.Cmd, env.Migrate, true
	}
	return nil, nil, nil, false
}

// groupSM wraps the application's StateMachine in one shard group's
// ownership gate. It decodes the Sharded layer's envelopes, interprets
// migration commands (delegating the data movement to the inner machine's
// Migrator), and refuses application commands and queries for keys the
// group's latest committed ring config routes elsewhere — the refusal is
// itself a committed, deterministic log event, so a write that raced a
// handoff provably did not mutate the ceded range and can be retried at the
// new owner.
//
// All gate state (the committed ring config, the import dedupe epochs, the
// export outbox) is part of the machine state proper: every replica view
// derives the identical gate from the identical log, and snapshots carry it.
type groupSM struct {
	self  string
	inner StateMachine

	ring     *shard.Ring       // latest committed ownership config; nil = every routed key is ours
	inEpochs map[string]uint64 // per ceding source: epoch of the last applied import
	// Export outbox: the latest migrate-out's result, keyed by its epoch. A
	// re-proposed export (the rebalancer retried after losing the first
	// response) replays the stored result instead of exporting the — by then
	// empty — range again, which would silently drop the ceded state.
	outEpoch uint64
	outData  []byte
	outKeys  int
}

func newGroupSM(self string, inner StateMachine) *groupSM {
	return &groupSM{self: self, inner: inner, inEpochs: make(map[string]uint64)}
}

func (g *groupSM) Apply(e LogEntry) ([]byte, error) {
	key, cmd, mig, ok := decodeEnvelopeParts(e.Cmd)
	if !ok {
		// Raw log-level command: no key to gate on; it bypassed routing and
		// bypasses the gate, exactly like before rebalancing existed.
		return g.inner.Apply(e)
	}
	if mig != nil {
		return g.applyMigrate(mig)
	}
	// The ownership check materializes the key string only when a ring is
	// committed: until the first rebalance (the common case on the hot path)
	// every routed key is ours and the key bytes are never copied.
	if g.ring != nil {
		if k := string(key); g.ring.Shard(k) != g.self {
			return nil, &KeyMovedError{Key: k, From: g.self, Owner: g.ring.Shard(k), Index: e.Index}
		}
	}
	inner := e
	inner.Cmd = cmd
	return g.inner.Apply(inner)
}

func (g *groupSM) applyMigrate(m *migrateCmd) ([]byte, error) {
	if m.Group != g.self {
		// A migrate command built for another group (a replayed envelope, a
		// misdirected raw propose) must not carve up THIS group's state.
		return nil, fmt.Errorf("sharded: migrate command for %s committed in %s", m.Group, g.self)
	}
	if m.Ack {
		// The exported range has been imported everywhere: drop the outbox
		// copy so the ceded bytes stop living in this machine's state (and
		// its snapshots) forever. Replaying a stale ack is harmless.
		if m.Epoch == g.outEpoch {
			g.outData = nil
		}
		return json.Marshal(migrateResult{})
	}
	mig, ok := g.inner.(Migrator)
	if !ok {
		return nil, fmt.Errorf("sharded: migrate committed in %s: %w", g.self, ErrNoMigrator)
	}
	next := shard.New(m.Shards, m.VNodes)
	if m.Out {
		if m.Epoch <= g.outEpoch {
			if m.Epoch == g.outEpoch {
				// Duplicate export (a lost-response retry): replay the result.
				return json.Marshal(migrateResult{Data: g.outData, Keys: g.outKeys})
			}
			return json.Marshal(migrateResult{}) // stale epoch: nothing left to say
		}
		data, keys, err := mig.MigrateOut(func(key string) bool { return next.Shard(key) != g.self })
		if err != nil {
			// Nothing recorded: the gate stays un-ceded and a retried
			// rebalance re-runs the export instead of replaying a failure.
			return nil, fmt.Errorf("sharded: migrate out of %s: %w", g.self, err)
		}
		// Gate and carve-out commit together, inside this one apply, so no
		// command can slip between the cede and the export. Deterministic:
		// every replica runs the identical branch on the identical state.
		g.ring = next
		g.outEpoch, g.outData, g.outKeys = m.Epoch, data, keys
		return json.Marshal(migrateResult{Data: data, Keys: keys})
	}
	if last, dup := g.inEpochs[m.Source]; dup && m.Epoch <= last {
		// Duplicate import (same handoff re-proposed): merging again could
		// overwrite writes accepted since the first merge.
		return json.Marshal(migrateResult{})
	}
	keys, err := mig.MigrateIn(m.Data, func(key string) bool { return next.Shard(key) == g.self })
	if err != nil {
		// Record nothing on failure: a retried handoff must re-propose this
		// import and have it actually merge, not hit the dedupe branch and
		// silently drop the exported range.
		return nil, fmt.Errorf("sharded: migrate into %s: %w", g.self, err)
	}
	g.inEpochs[m.Source] = m.Epoch
	g.ring = next
	return json.Marshal(migrateResult{Keys: keys})
}

func (g *groupSM) Query(query []byte) ([]byte, error) {
	key, cmd, _, ok := decodeEnvelopeParts(query)
	if !ok {
		return g.queryInner(query) // raw log-level query: no key, no gate
	}
	if g.ring != nil {
		if k := string(key); g.ring.Shard(k) != g.self {
			return nil, &KeyMovedError{Key: k, From: g.self, Owner: g.ring.Shard(k)}
		}
	}
	return g.queryInner(cmd)
}

func (g *groupSM) queryInner(query []byte) ([]byte, error) {
	qr, ok := g.inner.(Querier)
	if !ok {
		return nil, ErrNotQueryable
	}
	return qr.Query(query)
}

// groupSnap is the serialized gate state wrapped around the inner machine's
// snapshot.
type groupSnap struct {
	Shards   []string          `json:"shards,omitempty"`
	VNodes   int               `json:"vnodes,omitempty"`
	InEpochs map[string]uint64 `json:"in_epochs,omitempty"`
	OutEpoch uint64            `json:"out_epoch,omitempty"`
	OutData  []byte            `json:"out_data,omitempty"`
	OutKeys  int               `json:"out_keys,omitempty"`
	Inner    []byte            `json:"inner"`
}

func (g *groupSM) Snapshot() ([]byte, error) {
	inner, err := g.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	snap := groupSnap{InEpochs: g.inEpochs, OutEpoch: g.outEpoch, OutData: g.outData, OutKeys: g.outKeys, Inner: inner}
	if g.ring != nil {
		snap.Shards = g.ring.Shards()
		snap.VNodes = g.ring.VirtualNodes()
	}
	return json.Marshal(snap)
}

func (g *groupSM) Restore(snapshot []byte, lastIndex uint64) error {
	var snap groupSnap
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return fmt.Errorf("sharded: restore gate state: %w", err)
	}
	g.ring = nil
	if len(snap.Shards) > 0 {
		g.ring = shard.New(snap.Shards, snap.VNodes)
	}
	g.inEpochs = snap.InEpochs
	if g.inEpochs == nil {
		g.inEpochs = make(map[string]uint64)
	}
	g.outEpoch, g.outData, g.outKeys = snap.OutEpoch, snap.OutData, snap.OutKeys
	return g.inner.Restore(snap.Inner, lastIndex)
}

// migration is one in-flight AddShard/RemoveShard: the ring it is moving to
// and the per-source handoff progress. done/ready are guarded by Sharded.mu
// (route reads them); exports is touched only under rebalanceMu.
type migration struct {
	epoch   uint64
	next    *shard.Ring
	target  string                   // shard being added ("" for a removal)
	removed string                   // shard being removed ("" for an addition)
	done    map[string]bool          // ceding source → its range's handoff has committed
	ready   map[string]chan struct{} // closed when the source's handoff commits
	exports map[string]migrateResult // exported but not yet fully imported ranges
}

func (m *migration) describe() string {
	if m.target != "" {
		return fmt.Sprintf("AddShard(%s)", m.target)
	}
	return fmt.Sprintf("RemoveShard(%s)", m.removed)
}

// Sharded runs one replicated state machine per shard of a consistent-hash
// ring: every group owns its own instances of the application's StateMachine
// (built by the factory given to NewSharded), so unrelated keys commit — and
// snapshot, and garbage-collect — in parallel while each key still enjoys the
// underlying protocol's resilience. It is the generic layer every workload
// plugs into; ShardedKV is its ~100-line reference client.
//
// Keys never span shards, so per-key ordering is exactly per-shard log
// ordering; cross-shard operations get no atomicity.
//
// The shard set is LIVE: AddShard and RemoveShard rebalance the ring under
// traffic, draining each moved key range through the logs it leaves and
// enters (a committed migrate-out in the ceding group, a committed migrate-in
// in the receiving one) while the ownership gate in every group's machine
// refuses writes and reads for keys the group has ceded — a refused operation
// is retried against the new owner (ShardedStats.Forwarded), so a moving key
// is never lost and never forked across groups. Requires the application
// machine to implement Migrator.
type Sharded struct {
	newSM   func() StateMachine
	logOpts LogOptions // per-group template; NewSM is set per group
	// envelope is set when an application machine exists: commands and
	// queries then travel wrapped with their routing key for the ownership
	// gate. Plain logs (nil newSM) stay raw — they cannot rebalance anyway.
	envelope bool

	// metrics is the registry every group records into — one per Sharded
	// deployment (or the caller's, via ShardedOptions.Log.Metrics), so the
	// slot-lifecycle instrumentation aggregates across shards for free.
	metrics *metrics.Registry

	mu       sync.RWMutex
	ring     *shard.Ring         // guarded by mu
	logs     map[string]*smr.Log // guarded by mu
	mig      *migration          // guarded by mu
	migEpoch uint64              // guarded by mu
	closed   bool                // guarded by mu

	// rebalanceMu serializes whole AddShard/RemoveShard operations.
	rebalanceMu sync.Mutex

	rebalances atomic.Uint64
	migrated   atomic.Uint64
	forwarded  atomic.Uint64
}

// NewSharded builds the ring and one replicated-log group per shard, each
// owning state machines built by newSM (one authoritative machine plus one
// learner view per replica, per shard). A nil newSM builds plain logs of
// opaque commands (which cannot rebalance).
func NewSharded(newSM func() StateMachine, opts ShardedOptions) (*Sharded, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if userHook := opts.Log.OnCommit; userHook != nil {
		// Application hooks see the application's commands: unwrap envelopes,
		// and skip both the migration plumbing and gate-refused commands
		// (committed entries that changed no state — a refused write is
		// retried and fires the hook once, at the owner that applied it).
		// Their indices appear to the hook as gaps. Raw log-level entries
		// pass through untouched, rejected or not: ShardedKV's foreign-entry
		// accounting depends on seeing them.
		opts.Log.OnCommit = func(e LogEntry) {
			if _, cmd, mig, ok := decodeEnvelopeParts(e.Cmd); ok {
				if mig != nil || e.Rejected {
					return
				}
				e.Cmd = cmd
			}
			userHook(e)
		}
	}
	if opts.Log.Metrics == nil {
		// One registry across every group (including those added by later
		// rebalances): counters, histogram buckets and delta-maintained
		// gauges then sum into a deployment-wide view (Sharded.Metrics).
		opts.Log.Metrics = metrics.NewRegistry()
	}
	names := shard.ShardNames(opts.Shards)
	s := &Sharded{
		newSM:    newSM,
		logOpts:  opts.Log,
		envelope: newSM != nil,
		metrics:  opts.Log.Metrics,
		ring:     shard.New(names, opts.VirtualNodes),
		logs:     make(map[string]*smr.Log, opts.Shards),
	}
	for _, name := range names {
		l, err := s.makeLog(name)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("sharded: shard %s: %w", name, err)
		}
		s.logs[name] = l
	}
	return s, nil
}

// makeLog builds one group's replicated log, its machines wrapped in the
// group's ownership gate.
func (s *Sharded) makeLog(name string) (*smr.Log, error) {
	logOpts := s.logOpts
	if s.newSM != nil {
		logOpts.NewSM = func() StateMachine { return newGroupSM(name, s.newSM()) }
	} else {
		logOpts.NewSM = nil
	}
	return smr.NewLog(logOpts)
}

// route resolves the group that currently serves key: by the authoritative
// ring, except that a key whose range has completed its handoff mid-rebalance
// already routes to its new owner. For a key whose range is still moving it
// returns the (refusing-soon) old owner plus the channel closed when the
// range's handoff commits — the forwarding loops wait on it before retrying.
func (s *Sharded) route(key string) (name string, l *smr.Log, handedOff <-chan struct{}, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return "", nil, nil, ErrLogClosed
	}
	name, handedOff = s.ownerLocked(key)
	l, ok := s.logs[name]
	if !ok {
		return "", nil, nil, fmt.Errorf("sharded: no shard for key %q", key)
	}
	return name, l, handedOff, nil
}

// forward handles one refused operation: count it, then wait for the moving
// range's handoff to commit before the caller re-routes — bounded by ctx
// and, when bound > 0, by that duration (the timer is created only here, on
// the rare actually-waiting path, never on a hot read). A nil channel means
// the routing view has already moved on — re-routing alone suffices.
func (s *Sharded) forward(ctx context.Context, handedOff <-chan struct{}, bound time.Duration) error {
	s.forwarded.Add(1)
	if handedOff == nil {
		return nil
	}
	if bound > 0 {
		t := time.NewTimer(bound)
		defer t.Stop()
		select {
		case <-handedOff:
			return nil
		case <-t.C:
			return fmt.Errorf("%w (handoff still in flight after %v)", ErrKeyMoved, bound)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case <-handedOff:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// withOwner is the shared routing-retry loop behind Propose, Read and
// StaleRead: run op against key's current owner; on a committed ownership
// refusal, wait for the moving range's handoff (bounded by ctx, and by
// waitBound if positive) and retry at the new owner; on a closed log that
// turns out to be a removed shard, just re-route. Any other error —
// including application-level rejections, whose op may have captured a valid
// index and response — is final and wrapped with the verb.
func (s *Sharded) withOwner(ctx context.Context, verb, key string, waitBound time.Duration, op func(l *smr.Log) error) (string, error) {
	for {
		name, l, handedOff, err := s.route(key)
		if err != nil {
			return "", err
		}
		err = op(l)
		switch {
		case err == nil:
			return name, nil
		case errors.Is(err, ErrKeyMoved):
			if werr := s.forward(ctx, handedOff, waitBound); werr != nil {
				return name, fmt.Errorf("sharded: %s %q: %w", verb, key, werr)
			}
		case errors.Is(err, ErrLogClosed) && s.rerouted(key, name):
			s.forwarded.Add(1)
		default:
			return name, fmt.Errorf("sharded: %s %q: %w", verb, key, err)
		}
	}
}

// envelopePayload wraps an application payload with its routing key when the
// groups run the ownership gate; plain logs stay raw.
func (s *Sharded) envelopePayload(key string, payload []byte) ([]byte, error) {
	if !s.envelope {
		return payload, nil
	}
	return encodeEnvelope(shardEnvelope{Key: key, Cmd: payload})
}

// Propose replicates cmd through the shard owning key and returns the shard's
// name, the command's index in that shard's log, and the state machine's
// response. When Propose returns without error, the command is committed and
// applied. If a rebalance moves the key's range mid-flight, the old owner
// commits a refusal instead of a write and Propose transparently retries
// against the new owner (counted in ShardedStats.Forwarded).
func (s *Sharded) Propose(ctx context.Context, key string, cmd []byte) (string, uint64, []byte, error) {
	payload, err := s.envelopePayload(key, cmd)
	if err != nil {
		return "", 0, nil, err
	}
	var index uint64
	var resp []byte
	name, err := s.withOwner(ctx, "propose", key, 0, func(l *smr.Log) error {
		var err error
		index, resp, err = l.Propose(ctx, payload)
		return err
	})
	return name, index, resp, err
}

// rerouted reports whether key now routes somewhere other than name — the
// retry test for operations that raced a shard removal.
func (s *Sharded) rerouted(key, name string) bool {
	newName, _, _, err := s.route(key)
	return err == nil && newName != name
}

// ownerLocked resolves the group that currently serves key — the
// authoritative ring, except that a key whose range has completed its
// mid-rebalance handoff already names its new owner. When the key's range is
// still moving it additionally returns the channel closed when the handoff
// commits. Callers must hold s.mu (read or write).
//
//smrlint:holds mu
func (s *Sharded) ownerLocked(key string) (name string, handedOff <-chan struct{}) {
	name = s.ring.Shard(key)
	if s.mig != nil {
		if next := s.mig.next.Shard(key); next != name {
			if s.mig.done[name] {
				name = next
			} else {
				handedOff = s.mig.ready[name]
			}
		}
	}
	return name, handedOff
}

// Read serves a linearizable query against the shard owning key: it is
// guaranteed to observe every Propose on that key that returned before the
// Read started — across rebalances too: once the key's new owner serves
// reads, it has imported every write its old owner committed. See Log.Read.
func (s *Sharded) Read(ctx context.Context, key string, query []byte) ([]byte, error) {
	payload, err := s.envelopePayload(key, query)
	if err != nil {
		return nil, err
	}
	var resp []byte
	_, err = s.withOwner(ctx, "read", key, 0, func(l *smr.Log) error {
		var err error
		resp, err = l.Read(ctx, payload)
		return err
	})
	return resp, err
}

// staleForwardWait bounds how long a StaleRead — which takes no context —
// waits for a moving range's handoff before giving up. Handoffs commit in a
// few slot round trips, so a generous bound only ever bites when a rebalance
// is stuck.
const staleForwardWait = 2 * time.Second

// StaleRead serves a local, possibly-stale query for key — no consensus
// round, no barrier — from the owning shard's freshest available replica
// view: the lease holder's while the lease is in force, otherwise the
// most-applied view (a deposed or crashed leader's frozen learner view must
// not shadow replicas that kept applying; see Log.LocalRead). During a
// rebalance the staleness window extends across the handoff: a key that just
// moved may briefly read as absent on a destination replica that has not
// applied the import yet.
func (s *Sharded) StaleRead(key string, query []byte) ([]byte, error) {
	return s.StaleReadContext(context.Background(), key, query)
}

// StaleReadContext is StaleRead bounded by ctx: the read itself is local and
// immediate, but a key whose range is mid-handoff waits for the handoff to
// commit before retrying at the new owner, and that wait now honors the
// caller's deadline — which is what lets a network server enforce request
// deadlines on the stale-read path. The staleForwardWait bound still applies
// on top, so a stuck rebalance degrades to an error even under a generous
// ctx (the timer exists only on the actually-waiting path; the hot local-read
// case pays nothing for it).
func (s *Sharded) StaleReadContext(ctx context.Context, key string, query []byte) ([]byte, error) {
	// The local read never blocks, so an already-dead ctx would otherwise
	// still succeed; callers handed a canceled request deserve a refusal.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := s.envelopePayload(key, query)
	if err != nil {
		return nil, err
	}
	var resp []byte
	_, err = s.withOwner(ctx, "stale read", key, staleForwardWait, func(l *smr.Log) error {
		var err error
		resp, err = l.LocalRead(payload)
		return err
	})
	return resp, err
}

// AddShard grows the ring by one group under live traffic: it builds the new
// group, computes the key ranges that move to it (an expected 1/(S+1)
// fraction, per consistent hashing's minimal movement), and drains each
// ceding group through its own log — a committed migrate-out carves the moved
// sub-state out of the source (after a Barrier so the export covers every
// write routed there before the rebalance began) and a committed migrate-in
// merges it into the new group. From the moment a source's cede commits, its
// machine refuses operations on the moved keys; the Sharded layer retries
// them against the new owner once the range's import commits, so no write is
// lost, no key is served by two groups, and no downtime is taken.
//
// Adding an existing shard is a no-op. If AddShard fails partway (context
// expired, a group halted), the moved ranges whose cede committed stay
// unavailable until AddShard is called again with the same name — it resumes
// the interrupted handoffs idempotently (duplicate migration commands replay
// or no-op by epoch). A rebalance for a different shard cannot start until
// then (ErrRebalanceInProgress).
func (s *Sharded) AddShard(ctx context.Context, name string) error {
	return s.rebalanceShards(ctx, name, "")
}

// RemoveShard shrinks the ring by one group under live traffic: the removed
// group's whole key space is exported through its log and fanned out to every
// surviving group (each merges exactly the keys the new ring routes to it),
// after which the group's log is closed. Removing an unknown shard is a
// no-op; removing the last shard is an error. Failure and resume semantics
// match AddShard.
func (s *Sharded) RemoveShard(ctx context.Context, name string) error {
	return s.rebalanceShards(ctx, "", name)
}

func (s *Sharded) rebalanceShards(ctx context.Context, add, remove string) error {
	// Probe the factory here, on the rare rebalance path, rather than paying
	// a throwaway machine construction in every NewSharded.
	if s.newSM == nil {
		return ErrNoMigrator
	}
	if _, ok := s.newSM().(Migrator); !ok {
		return ErrNoMigrator
	}
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()

	s.mu.RLock()
	closed, mig := s.closed, s.mig
	_, addExists := s.logs[add]
	_, removeExists := s.logs[remove]
	size := s.ring.Size()
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("sharded: rebalance: %w", ErrLogClosed)
	}
	if mig != nil && (mig.target != add || mig.removed != remove) {
		return fmt.Errorf("%w: %s", ErrRebalanceInProgress, mig.describe())
	}
	if mig == nil {
		switch {
		case add != "" && addExists:
			return nil // already a member
		case remove != "" && !removeExists:
			return nil // already gone
		case remove != "" && size <= 1:
			return fmt.Errorf("sharded: cannot remove the last shard %q", remove)
		}
		var addLog *smr.Log
		if add != "" {
			var err error
			if addLog, err = s.makeLog(add); err != nil {
				return fmt.Errorf("sharded: shard %s: %w", add, err)
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			if addLog != nil {
				addLog.Close()
			}
			return fmt.Errorf("sharded: rebalance: %w", ErrLogClosed)
		}
		next := s.ring.Clone()
		if add != "" {
			next.Add(add)
		} else {
			next.Remove(remove)
		}
		s.migEpoch++
		mig = &migration{
			epoch:   s.migEpoch,
			next:    next,
			target:  add,
			removed: remove,
			done:    make(map[string]bool),
			ready:   make(map[string]chan struct{}),
			exports: make(map[string]migrateResult),
		}
		for _, src := range shard.Ceders(s.ring, next) {
			mig.ready[src] = make(chan struct{})
		}
		if addLog != nil {
			s.logs[add] = addLog
		}
		s.mig = mig
		s.mu.Unlock()
	}

	// Drain each still-pending source, in stable order.
	sources := make([]string, 0, len(mig.ready))
	for src := range mig.ready {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		s.mu.RLock()
		done := mig.done[src]
		s.mu.RUnlock()
		if done {
			continue
		}
		if err := s.handoff(ctx, mig, src); err != nil {
			return err
		}
	}

	// Every range handed off: publish the new ring and retire the migration.
	s.mu.Lock()
	s.ring = mig.next
	s.mig = nil
	var closing *smr.Log
	if remove != "" {
		closing = s.logs[remove]
		delete(s.logs, remove)
	}
	s.mu.Unlock()
	s.rebalances.Add(1)
	if closing != nil {
		closing.Close()
	}
	return nil
}

// importTimeout bounds the import half of a handoff, which runs detached from
// the caller's context: once a source has committed its cede, cancelling the
// caller must not strand the exported range in limbo.
const importTimeout = 10 * time.Minute

// handoff drains one ceding group's moved ranges: barrier, committed export,
// committed import(s), then mark the range as handed off so routing moves and
// forwarded operations retry.
func (s *Sharded) handoff(ctx context.Context, mig *migration, src string) error {
	s.mu.RLock()
	srcLog := s.logs[src]
	s.mu.RUnlock()
	if srcLog == nil {
		return fmt.Errorf("sharded: ceding shard %s has no log", src)
	}

	res, exported := mig.exports[src]
	if !exported {
		// Flush the source's queue first so the export commits strictly after
		// every write routed there before the rebalance began.
		if _, err := srcLog.Barrier(ctx); err != nil {
			return fmt.Errorf("sharded: barrier before migrating out of %s: %w", src, err)
		}
		out, err := encodeEnvelope(shardEnvelope{Migrate: &migrateCmd{
			Out: true, Epoch: mig.epoch, Shards: mig.next.Shards(), VNodes: mig.next.VirtualNodes(), Group: src,
		}})
		if err != nil {
			return err
		}
		_, resp, err := proposeRetry(ctx, srcLog, out)
		if err != nil {
			return fmt.Errorf("sharded: migrate out of %s: %w", src, err)
		}
		if err := json.Unmarshal(resp, &res); err != nil {
			return fmt.Errorf("sharded: migrate out of %s: decode result: %w", src, err)
		}
		mig.exports[src] = res
		traceMigrate(srcLog, "migrate-out committed in %s: %d keys ceded (epoch %d)", src, res.Keys, mig.epoch)
	}

	// The cede is committed: the moved range exists only in res now. Run the
	// imports under a detached context so the caller's cancellation cannot
	// strand it.
	ictx, cancel := context.WithTimeout(context.Background(), importTimeout)
	defer cancel()
	dests := []string{mig.target}
	if mig.target == "" {
		dests = mig.next.Shards() // a removal fans out to every survivor
	}
	for _, dest := range dests {
		s.mu.RLock()
		destLog := s.logs[dest]
		s.mu.RUnlock()
		if destLog == nil {
			return fmt.Errorf("sharded: import destination %s has no log", dest)
		}
		in, err := encodeEnvelope(shardEnvelope{Migrate: &migrateCmd{
			Epoch: mig.epoch, Shards: mig.next.Shards(), VNodes: mig.next.VirtualNodes(),
			Group: dest, Source: src, Data: res.Data,
		}})
		if err != nil {
			return err
		}
		_, resp, err := proposeRetry(ictx, destLog, in)
		if err != nil {
			return fmt.Errorf("sharded: import %s's range into %s: %w (range unavailable until the rebalance is retried to completion)", src, dest, err)
		}
		var ires migrateResult
		if err := json.Unmarshal(resp, &ires); err != nil {
			return fmt.Errorf("sharded: import into %s: decode result: %w", dest, err)
		}
		s.migrated.Add(uint64(ires.Keys))
		traceMigrate(destLog, "migrate-in committed in %s: %d keys merged from %s (epoch %d)", dest, ires.Keys, src, mig.epoch)
	}

	// Every import is committed: tell the source it may drop its export
	// outbox (best-effort — the ack only bounds memory; a lost ack leaves
	// the outbox until the next rebalance). A group being removed skips it:
	// its log closes in a moment anyway.
	if src != mig.removed {
		if ack, err := encodeEnvelope(shardEnvelope{Migrate: &migrateCmd{
			Ack: true, Epoch: mig.epoch, Shards: mig.next.Shards(), VNodes: mig.next.VirtualNodes(), Group: src,
		}}); err == nil {
			_, _, _ = proposeRetry(ictx, srcLog, ack)
		}
	}

	delete(mig.exports, src)
	s.mu.Lock()
	mig.done[src] = true
	close(mig.ready[src])
	s.mu.Unlock()
	return nil
}

// traceMigrate records one leg of a shard handoff into the group's trace
// recorder (LogOptions.Cluster.Recorder). Nil-safe like every Recorder call.
func traceMigrate(l *smr.Log, format string, args ...any) {
	c := l.Cluster()
	c.Opts.Recorder.Record(c.LeaseHolder(), trace.KindShardMigrate, nil, 0, format, args...)
}

// proposeRetry re-proposes a migration command displaced by a lease takeover:
// ErrLeaseLost's contract is that the command provably did not commit, so
// re-proposing cannot double-apply (and migration commands are additionally
// idempotent by epoch).
func proposeRetry(ctx context.Context, l *smr.Log, cmd []byte) (uint64, []byte, error) {
	for {
		index, resp, err := l.Propose(ctx, cmd)
		if err == nil || !errors.Is(err, ErrLeaseLost) {
			return index, resp, err
		}
	}
}

// Shard returns the name of the shard that currently serves key (mid-
// rebalance, a key whose range has completed its handoff already names its
// new owner).
func (s *Sharded) Shard(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name, _ := s.ownerLocked(key)
	return name
}

// ShardLog returns the replicated log behind the named shard (for fault
// injection and inspection), or nil if no such shard exists.
func (s *Sharded) ShardLog(name string) *smr.Log {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logs[name]
}

// Shards returns the shard names in stable order (the authoritative ring: a
// shard being added appears once its rebalance completes, one being removed
// disappears then).
func (s *Sharded) Shards() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Shards()
}

// RingConfig returns the authoritative ring's geometry — the shard names in
// stable order plus the virtual-node count per shard. A ring of identical
// routing built elsewhere from exactly these two values (NewRing) is how a
// remote client mirrors the router without sharing its memory.
func (s *Sharded) RingConfig() (shards []string, vnodes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Shards(), s.ring.VirtualNodes()
}

// Stats aggregates the per-shard counters (see ShardedStats): recovery,
// takeover and read counters are summed across shards; Epoch is the MAXIMUM
// shard epoch (the most-failed-over group) and PipelineDepth the MINIMUM
// adaptive depth over LIVE groups — a closed or removed group reports 0 and
// is skipped, so it cannot masquerade as the most-backed-off one.
func (s *Sharded) Stats() ShardedStats {
	s.mu.RLock()
	logs := make([]*smr.Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	// Shards is the authoritative ring's size, matching Shards(): a group
	// mid-join (or parked by an interrupted AddShard) is not a member yet,
	// even though its log already exists for the handoff.
	shards := s.ring.Size()
	s.mu.RUnlock()

	total := ShardedStats{
		Shards:     shards,
		Rebalances: s.rebalances.Load(),
		Migrated:   s.migrated.Load(),
		Forwarded:  s.forwarded.Load(),
	}
	for _, l := range logs {
		stats := l.Stats()
		total.Recovered += stats.Recovered
		total.Refused += stats.Refused
		total.Takeovers += stats.Takeovers
		total.LeaseReads += stats.LeaseReads
		total.BarrierReads += stats.BarrierReads
		total.PipelineBackoffs += stats.PipelineBackoffs
		if stats.Epoch > total.Epoch {
			total.Epoch = stats.Epoch
		}
		if stats.PipelineDepth > 0 && (total.PipelineDepth == 0 || stats.PipelineDepth < total.PipelineDepth) {
			total.PipelineDepth = stats.PipelineDepth
		}
	}
	return total
}

// Metrics snapshots the deployment-wide slot-lifecycle instrumentation:
// every shard group records into one shared registry, so the counters,
// per-stage latency histograms and queue gauges here aggregate all groups —
// including any added or removed by rebalances — with no merge step. Safe to
// call from any goroutine mid-workload; see Log.Metrics for the stage
// semantics.
func (s *Sharded) Metrics() LogMetrics { return smr.MetricsFrom(s.metrics) }

// Registry returns the shared metrics registry behind Metrics, for text
// exposition (WriteText) and expvar publication.
func (s *Sharded) Registry() *MetricsRegistry { return s.metrics }

// Len returns the total number of committed commands across all shards
// (migration commands included: they are log entries like any other).
func (s *Sharded) Len() uint64 {
	s.mu.RLock()
	logs := make([]*smr.Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.RUnlock()
	var total uint64
	for _, l := range logs {
		total += l.Len()
	}
	return total
}

// Close shuts every shard's log down. Like Log.Close it is idempotent.
func (s *Sharded) Close() {
	s.mu.Lock()
	s.closed = true
	logs := make([]*smr.Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, l := range logs {
		wg.Add(1)
		go func(l *smr.Log) {
			defer wg.Done()
			l.Close()
		}(l)
	}
	wg.Wait()
}
