package rdmaagreement

import (
	"context"
	"fmt"
	"sync"

	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
)

// ShardedOptions configure a Sharded replicated state machine.
type ShardedOptions struct {
	// Shards is the number of independent replicated-log groups. Zero means 4.
	Shards int
	// VirtualNodes is the ring's virtual-node count per shard. Zero means
	// shard.DefaultVirtualNodes.
	VirtualNodes int
	// Log configures each shard's replicated log (protocol, topology,
	// batching, snapshot interval). The zero value is a 3-process, 3-memory
	// Protected Memory Paxos group. Log.NewSM is overridden by the factory
	// passed to NewSharded.
	Log LogOptions
}

// Sharded runs one replicated state machine per shard of a consistent-hash
// ring: every group owns its own instances of the application's StateMachine
// (built by the factory given to NewSharded), so unrelated keys commit — and
// snapshot, and garbage-collect — in parallel while each key still enjoys the
// underlying protocol's resilience. It is the generic layer every workload
// plugs into; ShardedKV is its ~100-line reference client.
//
// Keys never span shards, so per-key ordering is exactly per-shard log
// ordering; cross-shard operations get no atomicity.
type Sharded struct {
	ring *shard.Ring
	logs map[string]*smr.Log
}

// NewSharded builds the ring and one replicated-log group per shard, each
// owning state machines built by newSM (one authoritative machine plus one
// learner view per replica, per shard). A nil newSM builds plain logs of
// opaque commands.
func NewSharded(newSM func() StateMachine, opts ShardedOptions) (*Sharded, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	names := shard.ShardNames(opts.Shards)
	s := &Sharded{
		ring: shard.New(names, opts.VirtualNodes),
		logs: make(map[string]*smr.Log, opts.Shards),
	}
	for _, name := range names {
		logOpts := opts.Log
		logOpts.NewSM = newSM
		l, err := smr.NewLog(logOpts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("sharded: shard %s: %w", name, err)
		}
		s.logs[name] = l
	}
	return s, nil
}

// group resolves the owning shard of key.
func (s *Sharded) group(key string) (string, *smr.Log, error) {
	name := s.ring.Shard(key)
	l, ok := s.logs[name]
	if !ok {
		return "", nil, fmt.Errorf("sharded: no shard for key %q", key)
	}
	return name, l, nil
}

// Propose replicates cmd through the shard owning key and returns the shard's
// name, the command's index in that shard's log, and the state machine's
// response. When Propose returns without error, the command is committed and
// applied.
func (s *Sharded) Propose(ctx context.Context, key string, cmd []byte) (string, uint64, []byte, error) {
	name, l, err := s.group(key)
	if err != nil {
		return "", 0, nil, err
	}
	index, resp, err := l.Propose(ctx, cmd)
	if err != nil {
		return name, index, resp, fmt.Errorf("sharded: propose %q: %w", key, err)
	}
	return name, index, resp, nil
}

// Read serves a linearizable query against the shard owning key: it is
// guaranteed to observe every Propose on that key that returned before the
// Read started. See Log.Read.
func (s *Sharded) Read(ctx context.Context, key string, query []byte) ([]byte, error) {
	_, l, err := s.group(key)
	if err != nil {
		return nil, err
	}
	return l.Read(ctx, query)
}

// StaleRead serves a local, possibly-stale query from the leader replica's
// learner view of the shard owning key — no consensus round, no barrier.
func (s *Sharded) StaleRead(key string, query []byte) ([]byte, error) {
	_, l, err := s.group(key)
	if err != nil {
		return nil, err
	}
	return l.StaleRead(l.Cluster().Leader(), query)
}

// Shard returns the name of the shard that owns key.
func (s *Sharded) Shard(key string) string { return s.ring.Shard(key) }

// ShardLog returns the replicated log behind the named shard (for fault
// injection and inspection).
func (s *Sharded) ShardLog(name string) *smr.Log { return s.logs[name] }

// Shards returns the shard names in stable order.
func (s *Sharded) Shards() []string { return s.ring.Shards() }

// Stats aggregates the per-shard counters: recovery, takeover and read
// counters are summed across shards; Epoch is the MAXIMUM shard epoch (the
// most-failed-over group) and PipelineDepth the MINIMUM adaptive depth (the
// most-backed-off group) — sums would be meaningless for either.
func (s *Sharded) Stats() LogStats {
	var total LogStats
	for _, l := range s.logs {
		stats := l.Stats()
		total.Recovered += stats.Recovered
		total.Refused += stats.Refused
		total.Takeovers += stats.Takeovers
		total.LeaseReads += stats.LeaseReads
		total.BarrierReads += stats.BarrierReads
		total.PipelineBackoffs += stats.PipelineBackoffs
		if stats.Epoch > total.Epoch {
			total.Epoch = stats.Epoch
		}
		if total.PipelineDepth == 0 || stats.PipelineDepth < total.PipelineDepth {
			total.PipelineDepth = stats.PipelineDepth
		}
	}
	return total
}

// Len returns the total number of committed commands across all shards.
func (s *Sharded) Len() uint64 {
	var total uint64
	for _, l := range s.logs {
		total += l.Len()
	}
	return total
}

// Close shuts every shard's log down. Like Log.Close it is idempotent.
func (s *Sharded) Close() {
	var wg sync.WaitGroup
	for _, l := range s.logs {
		wg.Add(1)
		go func(l *smr.Log) {
			defer wg.Done()
			l.Close()
		}(l)
	}
	wg.Wait()
}
