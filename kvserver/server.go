// Package kvserver is the network front-end of the sharded replicated KV: an
// HTTP/JSON server over rdmaagreement.ShardedKV. Everything below it — the
// ring, the per-shard replicated logs, leases, rebalancing — already exists;
// this package only adds the door: request decoding, per-tenant key
// namespacing, backpressure (a global in-flight bound plus a per-connection
// bound, shed with typed 503s and Retry-After), graceful drain, and the
// store's metrics registry re-exposed over /metrics and /debug/vars.
//
// Endpoints (see internal/wire for the exact shapes and error taxonomy):
//
//	PUT    /v1/kv/{key}                 replicate key=value (body {"value":...})
//	GET    /v1/kv/{key}                 local read (formally stale)
//	GET    /v1/kv/{key}?linearizable=1  linearizable read (lease fast path)
//	GET    /v1/ring                     ring geometry + shard endpoints
//	GET    /v1/stats                    ShardedStats + foreign entries
//	POST   /v1/admin/shards/{name}      AddShard under live traffic
//	DELETE /v1/admin/shards/{name}      RemoveShard under live traffic
//	GET    /metrics                     Prometheus-style text exposition
//	GET    /debug/vars                  expvar-shaped JSON snapshot
//
// Tenancy: the X-KV-Tenant header selects a disjoint key namespace (default
// "default"); keys are combined server-side, so tenants cannot read or
// clobber each other's keys and the ring spreads every tenant's load alike.
//
// Backpressure: only the data path (/v1/kv/) is shed — admin, ring, stats
// and metrics stay reachable exactly when an operator needs them most.
//
//smrlint:wire producer
package kvserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement"
	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/wire"
)

// Options configure a Server.
type Options struct {
	// Store is the sharded KV being served. Required. The Server does not
	// own it: Close the store after Shutdown.
	Store *rdmaagreement.ShardedKV
	// Advertise is the base URL (scheme://host:port) clients should use to
	// reach this server, filled into /v1/ring's endpoint map. Empty derives
	// it per request from the Host header.
	Advertise string
	// MaxInflight bounds concurrently admitted data-path requests across the
	// whole server; excess is shed with a typed 503 (code "overloaded") and
	// a Retry-After hint instead of queueing without bound. Zero means 1024.
	MaxInflight int
	// MaxInflightPerConn bounds concurrently admitted data-path requests per
	// client connection (HTTP/2 streams, pipelined requests), so one greedy
	// connection cannot monopolize the global budget. Zero means 64. It is
	// enforced on connections accepted via Serve; a bare Handler used under
	// a foreign http.Server has no per-connection state to count against.
	MaxInflightPerConn int
	// RetryAfter is the backoff hint attached to shed and draining
	// responses. Zero means 50ms.
	RetryAfter time.Duration
}

// Server serves a ShardedKV over HTTP. Build with New, attach to a listener
// with Serve (or mount Handler under an existing server), stop with
// Shutdown.
type Server struct {
	store *rdmaagreement.ShardedKV
	opts  Options

	mux      *http.ServeMux
	sem      chan struct{}
	draining atomic.Bool

	mu   sync.Mutex
	http *http.Server // guarded by mu

	// Counters live in the store's own registry, so /metrics and the bench's
	// registry snapshots see serving-layer and consensus-layer numbers side
	// by side without a second exposition path.
	served      *metrics.Counter // admitted data-path requests
	shed        *metrics.Counter // refused: global in-flight bound
	shedConn    *metrics.Counter // refused: per-connection bound
	shedDrain   *metrics.Counter // refused: draining
	wireErrors  *metrics.Counter // non-2xx data-path responses (shed excluded)
	inflightNow *metrics.Gauge   // admitted and not yet responded
}

// New builds a Server over opts.Store.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("kvserver: Options.Store is required")
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 1024
	}
	if opts.MaxInflightPerConn <= 0 {
		opts.MaxInflightPerConn = 64
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 50 * time.Millisecond
	}
	reg := opts.Store.Registry()
	s := &Server{
		store:       opts.Store,
		opts:        opts,
		sem:         make(chan struct{}, opts.MaxInflight),
		served:      reg.Counter("server_requests"),
		shed:        reg.Counter("server_shed_overloaded"),
		shedConn:    reg.Counter("server_shed_conn_busy"),
		shedDrain:   reg.Counter("server_shed_draining"),
		wireErrors:  reg.Counter("server_error_responses"),
		inflightNow: reg.Gauge("server_inflight"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/kv/{key...}", s.guard(s.handlePut))
	mux.HandleFunc("GET /v1/kv/{key...}", s.guard(s.handleGet))
	mux.HandleFunc("GET /v1/ring", s.handleRing)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/admin/shards/{name}", s.handleAddShard)
	mux.HandleFunc("DELETE /v1/admin/shards/{name}", s.handleRemoveShard)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux = mux
	return s, nil
}

// Handler returns the server's routing handler, for mounting under an
// existing http.Server or a test harness. Backpressure and drain behave
// identically; only the per-connection bound needs Serve's connection hook.
func (s *Server) Handler() http.Handler { return s.mux }

// connState counts one accepted connection's admitted in-flight requests.
type connState struct{ inflight atomic.Int64 }

// connKey carries the connState through the request context.
type connKey struct{}

// Serve accepts connections on ln until Shutdown. It wires the
// per-connection accounting that the bare Handler cannot.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler: s.mux,
		ConnContext: func(ctx context.Context, _ net.Conn) context.Context {
			return context.WithValue(ctx, connKey{}, &connState{})
		},
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return http.ErrServerClosed
	}
	s.http = srv
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Shutdown drains the server: new requests (and new connections) are refused
// with typed 503s, in-flight requests run to completion, and Shutdown
// returns once every connection is idle or ctx expires. The store itself
// stays open — close it after Shutdown so in-flight commits can finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// guard is the data-path admission control: drain check, per-connection
// bound, then the global bound. Refusals are typed, counted, and carry the
// Retry-After hint; admitted requests are counted and gauged.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.shedDrain.Inc()
			s.refuse(w, wire.CodeDraining, "server is draining")
			return
		}
		if cs, ok := r.Context().Value(connKey{}).(*connState); ok {
			if cs.inflight.Add(1) > int64(s.opts.MaxInflightPerConn) {
				cs.inflight.Add(-1)
				s.shedConn.Inc()
				s.refuse(w, wire.CodeConnBusy, fmt.Sprintf("connection exceeds %d in-flight requests", s.opts.MaxInflightPerConn))
				return
			}
			defer cs.inflight.Add(-1)
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Inc()
			s.refuse(w, wire.CodeOverloaded, fmt.Sprintf("server exceeds %d in-flight requests", s.opts.MaxInflight))
			return
		}
		s.served.Inc()
		s.inflightNow.Add(1)
		defer s.inflightNow.Add(-1)
		h(w, r)
	}
}

// refuse sheds one request with a typed 503 + Retry-After.
func (s *Server) refuse(w http.ResponseWriter, code, msg string) {
	retry := s.opts.RetryAfter
	w.Header().Set("Retry-After", strconv.FormatFloat(retry.Seconds(), 'f', -1, 64))
	writeJSON(w, http.StatusServiceUnavailable, &wire.Error{
		Code: code, Message: msg, RetryAfterMS: retry.Milliseconds(),
	})
}

// tenantKey resolves the request's store-level key: tenant namespace (from
// the X-KV-Tenant header) joined with the path key.
func tenantKey(r *http.Request) (string, error) {
	key := r.PathValue("key")
	if key == "" {
		return "", errors.New("empty key")
	}
	return wire.TenantKey(r.Header.Get("X-KV-Tenant"), key), nil
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, err := tenantKey(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	var req wire.PutRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf("decode body: %v", err))
		return
	}
	shard, index, err := s.store.Put(r.Context(), key, req.Value)
	if err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.PutResponse{Shard: shard, Index: index})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, err := tenantKey(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	var value string
	var found bool
	if lin := r.URL.Query().Get("linearizable"); lin == "1" || lin == "true" {
		value, found, err = s.store.GetLinearizable(r.Context(), key)
	} else {
		value, found, err = s.store.GetWithContext(r.Context(), key)
	}
	if err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.GetResponse{Value: value, Found: found, Shard: s.store.Shard(key)})
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	shards, vnodes := s.store.RingConfig()
	base := s.opts.Advertise
	if base == "" {
		base = "http://" + r.Host
	}
	endpoints := make(map[string]string, len(shards))
	for _, name := range shards {
		endpoints[name] = base
	}
	writeJSON(w, http.StatusOK, wire.RingResponse{Shards: shards, VNodes: vnodes, Endpoints: endpoints})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		ShardedStats:   s.store.Stats(),
		ForeignEntries: s.store.ForeignEntries(),
	})
}

func (s *Server) handleAddShard(w http.ResponseWriter, r *http.Request) {
	s.handleShardChange(w, r, s.store.AddShard)
}

func (s *Server) handleRemoveShard(w http.ResponseWriter, r *http.Request) {
	s.handleShardChange(w, r, s.store.RemoveShard)
}

func (s *Server) handleShardChange(w http.ResponseWriter, r *http.Request, op func(context.Context, string) error) {
	name := r.PathValue("name")
	if name == "" {
		s.fail(w, http.StatusBadRequest, wire.CodeBadRequest, "empty shard name")
		return
	}
	if err := op(r.Context(), name); err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.AdminResponse{Shard: name, Shards: s.store.Shards()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.store.Registry().WriteText(w)
}

// handleVars serves an expvar-shaped JSON snapshot of the store's registry.
// It deliberately does not touch the process-global expvar table: a second
// server in the same process (tests, the bench's -net mode next to
// -metrics-addr) must not panic on a duplicate Publish.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"smr": s.store.Registry().Snapshot()})
}

// storeError translates a store error into its wire form, tallying it.
func (s *Server) storeError(w http.ResponseWriter, err error) {
	status, werr := wire.FromError(err)
	s.wireErrors.Inc()
	writeJSON(w, status, werr)
}

// fail writes a typed error response the wire taxonomy names directly.
func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.wireErrors.Inc()
	writeJSON(w, status, &wire.Error{Code: code, Message: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
