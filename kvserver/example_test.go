package kvserver_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"rdmaagreement"
	"rdmaagreement/kvserver"
)

// The HTTP front-end from a plain http client's point of view: PUT
// replicates through the owning shard's log, GET with linearizable=1 reads
// with the full guarantee. Any HTTP stack works — the wire contract is
// JSON plus a closed set of typed error codes (see internal/wire).
func ExampleServer() {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{Shards: 2})
	if err != nil {
		fmt.Println("store:", err)
		return
	}
	defer kv.Close()

	srv, err := kvserver.New(kvserver.Options{Store: kv})
	if err != nil {
		fmt.Println("server:", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	base := "http://" + ln.Addr().String()
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/kv/user/42",
		bytes.NewReader([]byte(`{"value":"hello"}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Println("put:", err)
		return
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/kv/user/42?linearizable=1")
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(resp.StatusCode, string(bytes.TrimSpace(body)))
	// Output: 200 {"value":"hello","found":true,"shard":"shard-1"}
}
