package kvserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdmaagreement"
	"rdmaagreement/internal/wire"
)

func newTestKV(t *testing.T) *rdmaagreement.ShardedKV {
	t.Helper()
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: 2,
		Log:    rdmaagreement.LogOptions{Cluster: rdmaagreement.Options{Processes: 3, Memories: 3}},
	})
	if err != nil {
		t.Fatalf("NewShardedKV: %v", err)
	}
	t.Cleanup(kv.Close)
	return kv
}

// startServer runs a Server over a real loopback listener (so per-connection
// accounting is wired) and tears it down with the test.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, "http://" + ln.Addr().String()
}

func doJSON(t *testing.T, method, u string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, u, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, blob
}

func TestServeEndToEnd(t *testing.T) {
	kv := newTestKV(t)
	_, base := startServer(t, Options{Store: kv})

	// Put, then read it back stale and linearizable.
	resp, blob := doJSON(t, http.MethodPut, base+"/v1/kv/user/42", wire.PutRequest{Value: "alice"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status = %d, body %s", resp.StatusCode, blob)
	}
	var put wire.PutResponse
	if err := json.Unmarshal(blob, &put); err != nil || put.Shard == "" {
		t.Fatalf("put response %s (err %v), want a shard name", blob, err)
	}
	for _, suffix := range []string{"", "?linearizable=1"} {
		resp, blob = doJSON(t, http.MethodGet, base+"/v1/kv/user/42"+suffix, nil, nil)
		var get wire.GetResponse
		if err := json.Unmarshal(blob, &get); err != nil || resp.StatusCode != http.StatusOK || !get.Found || get.Value != "alice" {
			t.Fatalf("get%s = %d %s (err %v), want found alice", suffix, resp.StatusCode, blob, err)
		}
	}

	// Ring: geometry a client can mirror, every shard mapped to an endpoint.
	resp, blob = doJSON(t, http.MethodGet, base+"/v1/ring", nil, nil)
	var ring wire.RingResponse
	if err := json.Unmarshal(blob, &ring); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ring = %d %s (err %v)", resp.StatusCode, blob, err)
	}
	if len(ring.Shards) != 2 || ring.VNodes <= 0 || len(ring.Endpoints) != 2 {
		t.Fatalf("ring response %+v, want 2 shards with endpoints and vnodes", ring)
	}

	// Stats and the two metrics expositions.
	resp, blob = doJSON(t, http.MethodGet, base+"/v1/stats", nil, nil)
	var stats wire.StatsResponse
	if err := json.Unmarshal(blob, &stats); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d %s (err %v)", resp.StatusCode, blob, err)
	}
	resp, blob = doJSON(t, http.MethodGet, base+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(blob), "server_requests") {
		t.Fatalf("/metrics = %d, want text exposition containing server_requests", resp.StatusCode)
	}
	resp, blob = doJSON(t, http.MethodGet, base+"/debug/vars", nil, nil)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(blob, &vars); err != nil || resp.StatusCode != http.StatusOK || vars["smr"] == nil {
		t.Fatalf("/debug/vars = %d %s (err %v), want {\"smr\": ...}", resp.StatusCode, blob, err)
	}

	// Admin: grow the ring through the endpoint, then observe it in /v1/ring.
	resp, blob = doJSON(t, http.MethodPost, base+"/v1/admin/shards/shard-2", nil, nil)
	var admin wire.AdminResponse
	if err := json.Unmarshal(blob, &admin); err != nil || resp.StatusCode != http.StatusOK || len(admin.Shards) != 3 {
		t.Fatalf("add shard = %d %s (err %v), want 3 shards", resp.StatusCode, blob, err)
	}
	if v, ok, err := kv.GetLinearizable(context.Background(), wire.TenantKey("", "user/42")); err != nil || !ok || v != "alice" {
		t.Fatalf("store after admin rebalance = %q, %v, %v", v, ok, err)
	}
}

func TestTenantNamespacesAreDisjoint(t *testing.T) {
	kv := newTestKV(t)
	_, base := startServer(t, Options{Store: kv})

	resp, blob := doJSON(t, http.MethodPut, base+"/v1/kv/color", wire.PutRequest{Value: "green"}, map[string]string{"X-KV-Tenant": "t1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant put = %d %s", resp.StatusCode, blob)
	}
	// The other tenant (and the default namespace) must not see it.
	for _, hdr := range []map[string]string{{"X-KV-Tenant": "t2"}, nil} {
		_, blob = doJSON(t, http.MethodGet, base+"/v1/kv/color?linearizable=1", nil, hdr)
		var get wire.GetResponse
		if err := json.Unmarshal(blob, &get); err != nil || get.Found {
			t.Fatalf("cross-tenant get (hdr %v) = %s (err %v), want not found", hdr, blob, err)
		}
	}
	_, blob = doJSON(t, http.MethodGet, base+"/v1/kv/color?linearizable=1", nil, map[string]string{"X-KV-Tenant": "t1"})
	var get wire.GetResponse
	if err := json.Unmarshal(blob, &get); err != nil || !get.Found || get.Value != "green" {
		t.Fatalf("same-tenant get = %s (err %v), want green", blob, err)
	}
}

func TestLoadShedOverloaded(t *testing.T) {
	kv := newTestKV(t)
	srv, base := startServer(t, Options{Store: kv, MaxInflight: 2, RetryAfter: 80 * time.Millisecond})

	// Fill the global in-flight budget; the next data request must be shed
	// with the typed 503 and the Retry-After hint, without queueing.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()

	resp, blob := doJSON(t, http.MethodGet, base+"/v1/kv/any", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	var werr wire.Error
	if err := json.Unmarshal(blob, &werr); err != nil || werr.Code != wire.CodeOverloaded {
		t.Fatalf("shed body = %s (err %v), want code overloaded", blob, err)
	}
	if werr.RetryAfterMS != 80 {
		t.Fatalf("RetryAfterMS = %d, want 80", werr.RetryAfterMS)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response lacks Retry-After header")
	}
	if got := srv.shed.Load(); got != 1 {
		t.Fatalf("server_shed_overloaded = %d, want 1", got)
	}

	// Admin, ring, stats and metrics must stay reachable while the data path
	// sheds — that is when an operator needs them.
	for _, path := range []string{"/v1/ring", "/v1/stats", "/metrics", "/debug/vars"} {
		if resp, _ := doJSON(t, http.MethodGet, base+path, nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s sheds (%d) while overloaded, must stay reachable", path, resp.StatusCode)
		}
	}
}

func TestLoadShedPerConnection(t *testing.T) {
	kv := newTestKV(t)
	srv, err := New(Options{Store: kv, MaxInflightPerConn: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Simulate a connection that already has its full budget in flight.
	cs := &connState{}
	cs.inflight.Store(4)
	req := httptest.NewRequest(http.MethodGet, "/v1/kv/any", nil)
	req = req.WithContext(context.WithValue(req.Context(), connKey{}, cs))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var werr wire.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &werr); err != nil || werr.Code != wire.CodeConnBusy {
		t.Fatalf("body = %s (err %v), want code conn_busy", rec.Body.Bytes(), err)
	}
	if got := cs.inflight.Load(); got != 4 {
		t.Fatalf("refusal leaked in-flight accounting: %d, want 4", got)
	}
	// The same request on a fresh connection is admitted.
	cs2 := &connState{}
	req2 := httptest.NewRequest(http.MethodGet, "/v1/kv/any", nil)
	req2 = req2.WithContext(context.WithValue(req2.Context(), connKey{}, cs2))
	rec2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("fresh connection status = %d, want 200", rec2.Code)
	}
}

func TestDrainRefusesNewRequests(t *testing.T) {
	kv := newTestKV(t)
	srv, err := New(Options{Store: kv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.draining.Store(true)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/kv/any", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var werr wire.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &werr); err != nil || werr.Code != wire.CodeDraining {
		t.Fatalf("body = %s (err %v), want code draining", rec.Body.Bytes(), err)
	}
}

func TestGracefulDrainFinishesInflight(t *testing.T) {
	kv := newTestKV(t)
	srv, base := startServer(t, Options{Store: kv})

	// A burst of puts in flight while Shutdown fires: every one must complete
	// with a committed 200 — drain means finish, not abort.
	const n = 8
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := doJSON(t, http.MethodPut, fmt.Sprintf("%s/v1/kv/drain/%d", base, i), wire.PutRequest{Value: "v"}, nil)
			results[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the burst reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Fatalf("in-flight put %d finished with %d during drain, want 200", i, code)
		}
	}
	// The drained server accepts nothing new.
	if _, err := http.Get(base + "/v1/kv/after"); err == nil {
		t.Fatal("request after drain succeeded, want connection failure")
	}
}
